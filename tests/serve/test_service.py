"""LaplacianService: correctness, staleness, eviction, queueing, metrics."""

import threading
import time

import numpy as np
import pytest

from repro.core import api
from repro.graphs import generators
from repro.serve import (
    ArtifactCache,
    FlushPolicy,
    LaplacianService,
    resistance_query,
    solve_query,
)
from repro.solvers.laplacian import BCCLaplacianSolver


@pytest.fixture
def graph():
    return generators.random_weighted_graph(50, average_degree=6, seed=21)


def make_service(**kwargs):
    kwargs.setdefault("t_override", 2)
    kwargs.setdefault("auto_flush", False)
    return LaplacianService(**kwargs)


class TestSolveFrontDoor:
    def test_solve_matches_exact_solution(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        b = rng.normal(size=graph.n)
        report = service.solve(key, b, eps=1e-8)
        reference = BCCLaplacianSolver(graph, seed=0, t_override=2)
        np.testing.assert_allclose(
            report.solution, reference.exact_solution(b), atol=1e-6
        )

    def test_second_solve_hits_cache(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        service.solve(key, rng.normal(size=graph.n))
        misses_after_first = service.cache.stats.misses
        service.solve(key, rng.normal(size=graph.n))
        assert service.cache.stats.misses == misses_after_first
        assert service.cache.stats.hits > 0

    def test_solve_caches_preprocessing_not_solver_objects(self, graph, rng):
        # the solver front object references the cached preprocessing; caching
        # it too would double-account those bytes and pin evicted entries
        service = make_service()
        key = service.register(graph)
        service.solve(key, rng.normal(size=graph.n))
        kinds = {entry.kind for entry in service.cache.entries()}
        assert kinds == {"preprocessing"}
        assert service.cache.total_bytes == sum(
            entry.nbytes for entry in service.cache.entries()
        )

    def test_warm_certify_is_cached(self, graph):
        service = make_service()
        key = service.register(graph)
        first = service.certify(key, eps=0.5)
        misses = service.cache.stats.misses
        second = service.certify(key, eps=0.5)
        assert second is first  # memoised report, no repeated eigensolve
        assert service.cache.stats.misses == misses

    def test_solve_many_matches_sequential(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        rhs = [rng.normal(size=graph.n) for _ in range(4)]
        batched = service.solve_many(key, rhs, eps=1e-8)
        for report, b in zip(batched, rhs):
            single = service.solve(key, b, eps=1e-8)
            np.testing.assert_allclose(report.solution, single.solution, atol=1e-7)

    def test_unregistered_key_raises(self, rng):
        service = make_service()
        with pytest.raises(KeyError):
            service.solve("missing", rng.normal(size=10))


class TestResistanceAndCertify:
    def test_effective_resistances_match_dense_reference(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        pairs = [(int(u), int(v)) for u, v in rng.integers(0, graph.n, (32, 2))]
        batched = service.effective_resistances(key, pairs)
        reference = api.effective_resistances(graph, pairs=pairs, backend="dense")
        np.testing.assert_allclose(batched, reference, rtol=1e-7, atol=1e-9)
        # scalar front door agrees with the batch
        single = service.effective_resistance(key, *pairs[0])
        np.testing.assert_allclose(single, batched[0], rtol=1e-9)

    def test_empty_pair_batch(self, graph):
        service = make_service()
        key = service.register(graph)
        assert service.effective_resistances(key, []).shape == (0,)

    def test_certify(self, graph):
        service = make_service()
        key = service.register(graph)
        report = service.certify(key, eps=0.5)
        assert report.ok
        assert report.sparsifier_edges > 0
        assert report.eps == 0.5


class TestCacheInvalidation:
    """Satellite: mutate a registered graph -> stale artifacts are refused."""

    def test_mutation_refuses_stale_artifact_and_rebuilds(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        b = rng.normal(size=graph.n)
        service.solve(key, b, eps=1e-8)
        version_before = service.registry.get(key).version
        misses_before = service.cache.stats.misses

        graph.add_edge(0, graph.n - 1, 9.0)  # mutate registered content
        report = service.solve(key, b, eps=1e-8)

        # rebuilt, not served from the stale artifact
        assert service.cache.stats.misses > misses_before
        entry = service.registry.get(key)
        assert entry.version > version_before and entry.is_current()
        # and the answer reflects the *mutated* graph
        reference = BCCLaplacianSolver(graph, seed=0, t_override=2)
        np.testing.assert_allclose(
            report.solution, reference.exact_solution(b), atol=1e-6
        )

    def test_mutation_drops_stale_cache_entries(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        service.solve(key, rng.normal(size=graph.n))
        service.effective_resistance(key, 0, 1)
        entries_before = len(service.cache)
        graph.remove_edge(*graph.edge_list()[0][:2])
        service.solve(key, rng.normal(size=graph.n))
        # the preprocessing could not absorb a removal: dropped and rebuilt
        assert service.cache.stats.invalidations >= 1
        # stale-version entries may linger awaiting their lazy repair -- they
        # are unservable (lookups key on the current version) and every one
        # still has a pending delta that can migrate it on its next lookup
        entry = service.registry.get(key)
        stale = [e for e in service.cache.entries() if e.version != entry.version]
        if stale:
            assert service.cache.pending_repair(entry.fingerprint, entry.version)
        assert len(service.cache) <= entries_before

    def test_resistance_reflects_mutation(self, graph):
        service = make_service()
        key = service.register(graph)
        u, v, _ = graph.edge_list()[0]
        before = service.effective_resistance(key, u, v)
        # adding a parallel 2-hop path strictly lowers the resistance
        w = next(
            x for x in range(graph.n)
            if x not in (u, v) and not graph.has_edge(u, x) and not graph.has_edge(x, v)
        )
        graph.add_edge(u, w, 50.0)
        graph.add_edge(w, v, 50.0)
        after = service.effective_resistance(key, u, v)
        assert after < before
        reference = api.effective_resistances(graph, pairs=[(u, v)], backend="dense")
        np.testing.assert_allclose(after, reference[0], rtol=1e-7)

    def test_reused_handle_never_serves_previous_graphs_artifacts(self, rng):
        # artifacts are keyed by content fingerprint, so re-using a handle
        # for a different graph (unregister + register) must rebuild, even
        # when both graphs happen to share the same version counter value
        g1 = generators.random_weighted_graph(40, average_degree=5, seed=1)
        g2 = generators.random_weighted_graph(40, average_degree=5, seed=2)
        service = make_service()
        b = rng.normal(size=40)
        key = service.register(g1, name="prod")
        service.solve(key, b, eps=1e-8)
        service.registry.unregister("prod")
        key = service.register(g2, name="prod")
        report = service.solve(key, b, eps=1e-8)
        reference = BCCLaplacianSolver(g2, seed=0, t_override=2)
        np.testing.assert_allclose(
            report.solution, reference.exact_solution(b), atol=1e-6
        )

    def test_lru_eviction_under_small_budget_stays_correct(self, rng):
        # alternate between two graphs with a cache that can hold only one
        # preprocessing artifact: every switch evicts, answers stay correct
        g1 = generators.random_weighted_graph(40, average_degree=5, seed=1)
        g2 = generators.random_weighted_graph(40, average_degree=5, seed=2)
        service = make_service(cache=ArtifactCache(max_entries=1))
        k1, k2 = service.register(g1), service.register(g2)
        b = rng.normal(size=40)
        ref1 = BCCLaplacianSolver(g1, seed=0, t_override=2).exact_solution(b)
        ref2 = BCCLaplacianSolver(g2, seed=0, t_override=2).exact_solution(b)
        for _ in range(2):
            np.testing.assert_allclose(
                service.solve(k1, b, eps=1e-8).solution, ref1, atol=1e-6
            )
            np.testing.assert_allclose(
                service.solve(k2, b, eps=1e-8).solution, ref2, atol=1e-6
            )
        assert service.cache.stats.evictions > 0
        assert len(service.cache) <= 2


class TestQueueing:
    def test_submit_defers_until_flush(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        ticket = service.submit(solve_query(key, rng.normal(size=graph.n)))
        assert not ticket.done()
        service.flush()
        assert ticket.done()
        assert ticket.result().batch_size == 1

    def test_full_batch_triggers_inline_flush(self, graph, rng):
        service = make_service(flush_policy=FlushPolicy(max_batch=3, max_wait_seconds=30))
        key = service.register(graph)
        tickets = [
            service.submit(resistance_query(key, 0, i)) for i in range(1, 4)
        ]
        # third submit reached max_batch -> flushed without an explicit call
        assert all(t.done() for t in tickets)
        assert tickets[0].result().batch_size == 3

    def test_background_flusher_honours_max_wait(self, graph, rng):
        service = LaplacianService(
            t_override=2,
            auto_flush=True,
            flush_policy=FlushPolicy(max_batch=64, max_wait_seconds=0.02),
        )
        try:
            key = service.register(graph)
            ticket = service.submit(resistance_query(key, 0, 1))
            result = ticket.result(timeout=10.0)  # no explicit flush anywhere
            assert result.value >= 0.0
        finally:
            service.close()

    def test_concurrent_submitters_all_get_answers(self, graph):
        service = LaplacianService(
            t_override=2,
            auto_flush=True,
            flush_policy=FlushPolicy(max_batch=8, max_wait_seconds=0.005),
        )
        key = service.register(graph)
        reference = api.effective_resistances(
            graph, pairs=[(0, v) for v in range(1, 17)], backend="dense"
        )
        answers = {}
        errors = []

        def client(v):
            try:
                answers[v] = service.effective_resistance(key, 0, v)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=client, args=(v,)) for v in range(1, 17)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        service.close()
        assert not errors
        np.testing.assert_allclose(
            [answers[v] for v in range(1, 17)], reference, rtol=1e-7, atol=1e-9
        )

    def test_malformed_queries_rejected_at_submit(self, graph, rng):
        # fault isolation: a bad query must fail its own client at submit
        # time, never a shared batch
        service = make_service()
        key = service.register(graph)
        with pytest.raises(ValueError):
            service.submit(resistance_query(key, 0, graph.n + 5))
        with pytest.raises(ValueError):
            service.submit(solve_query(key, np.zeros(graph.n + 3)))
        # an innocent query co-submitted around the rejected ones still works
        assert service.effective_resistance(key, 0, 1) > 0.0

    def test_failed_batch_propagates_to_tickets(self, graph, rng, monkeypatch):
        service = make_service()
        key = service.register(graph)
        ticket = service.submit(resistance_query(key, 0, 1))

        def explode(batch):
            raise RuntimeError("backend fell over")

        monkeypatch.setattr(service.planner, "execute_batch", explode)
        service.flush()
        with pytest.raises(RuntimeError, match="backend fell over"):
            ticket.result()

    def test_closed_service_rejects_submissions(self, graph):
        service = make_service()
        key = service.register(graph)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(resistance_query(key, 0, 1))


class TestMetrics:
    def test_snapshot_counters(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        service.solve(key, rng.normal(size=graph.n))
        service.solve(key, rng.normal(size=graph.n))
        service.effective_resistances(key, [(0, 1), (1, 2)])
        service.certify(key)
        snap = service.metrics_snapshot()
        assert snap["queries_total"] == 4
        assert snap["batches_total"] == 4
        assert snap["queries_by_kind"] == {"solve": 2, "resistance": 1, "certify": 1}
        assert 0.0 < snap["cache"]["hit_rate"] < 1.0
        assert snap["cache_bytes"] > 0
        assert snap["registered_graphs"] == 1
        latency = snap["latency_seconds"]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert latency["p99"] > 0.0

    def test_batch_occupancy_counts_coalescing(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        for v in range(1, 5):
            service.submit(resistance_query(key, 0, v))
        service.flush()
        assert service.metrics.batch_occupancy == 4.0


class TestCertifyReuse:
    def test_certify_reuses_solve_preprocessing_sparsifier(self, graph, rng):
        # certify at the solver's SPARSIFIER_EPS must not re-run the
        # multi-second sparsification when the solve path already cached it
        service = make_service()
        key = service.register(graph)
        service.solve(key, rng.normal(size=graph.n))
        build_seconds_before = service.cache.stats.build_seconds
        report = service.certify(key, eps=0.5)
        extra_build = service.cache.stats.build_seconds - build_seconds_before
        assert report.sparsifier_edges > 0
        # the certification report build only paid the eigensolve, not a
        # fresh sparsify; and no duplicate sparsifier entry was cached
        kinds = [entry.kind for entry in service.cache.entries()]
        assert kinds.count("certification") == 1
        assert "sparsifier" not in kinds
        prep = next(
            e.value for e in service.cache.entries() if e.kind == "preprocessing"
        )
        assert report.sparsifier_edges == prep.sparsifier.m
