"""GraphRegistry: fingerprints, handles, staleness, collisions."""

import pytest

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.serve.registry import (
    FingerprintCollisionError,
    GraphRegistry,
    graph_fingerprint,
)


def make_graph(seed=3):
    return generators.random_weighted_graph(24, average_degree=4, seed=seed)


class TestGraphFingerprint:
    def test_deterministic(self):
        g = make_graph()
        assert graph_fingerprint(g) == graph_fingerprint(g)

    def test_equal_content_equal_fingerprint(self):
        g = make_graph()
        h = g.copy()
        assert g is not h
        assert graph_fingerprint(g) == graph_fingerprint(h)

    def test_insertion_order_irrelevant(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 2.0)
        g.add_edge(2, 3, 1.0)
        h = WeightedGraph(4)
        h.add_edge(2, 3, 1.0)
        h.add_edge(0, 1, 2.0)
        assert graph_fingerprint(g) == graph_fingerprint(h)

    def test_sensitive_to_edges_weights_and_n(self):
        g = make_graph()
        plus_edge = g.copy()
        extra = next(
            (u, v)
            for u in range(g.n)
            for v in range(u + 1, g.n)
            if not g.has_edge(u, v)
        )
        plus_edge.add_edge(*extra, 1.0)
        reweighted = g.copy()
        u, v, _ = g.edge_list()[0]
        reweighted.add_edge(u, v, 99.0)
        bigger = WeightedGraph(g.n + 1)
        for a, b, w in g.edge_list():
            bigger.add_edge(a, b, w)
        fingerprints = {
            graph_fingerprint(g),
            graph_fingerprint(plus_edge),
            graph_fingerprint(reweighted),
            graph_fingerprint(bigger),
        }
        assert len(fingerprints) == 4


class TestVersionCounter:
    def test_mutators_bump_version(self):
        g = WeightedGraph(5)
        v0 = g.version
        g.add_edge(0, 1, 1.0)
        v1 = g.version
        g.add_edges([1, 2], [2, 3], 1.0)
        v2 = g.version
        g.remove_edge(0, 1)
        v3 = g.version
        assert v0 < v1 < v2 < v3

    def test_queries_do_not_bump(self):
        g = make_graph()
        version = g.version
        g.edge_array()
        g.neighbours(0)
        g.is_connected()
        list(g.edges())
        assert g.version == version


class TestGraphRegistry:
    def test_register_and_get(self):
        registry = GraphRegistry()
        g = make_graph()
        key = registry.register(g)
        entry = registry.get(key)
        assert entry.graph is g
        assert entry.is_current()
        assert key in registry and len(registry) == 1

    def test_named_handle(self):
        registry = GraphRegistry()
        key = registry.register(make_graph(), name="prod-graph")
        assert key == "prod-graph"
        assert registry.get("prod-graph").name == "prod-graph"

    def test_same_content_deduplicates(self):
        registry = GraphRegistry()
        g = make_graph()
        key1 = registry.register(g)
        key2 = registry.register(g.copy())
        assert key1 == key2
        assert len(registry) == 1

    def test_naming_already_registered_content_raises(self):
        # silently returning the anonymous handle would leave the requested
        # name unusable; the registry must refuse instead
        registry = GraphRegistry()
        g = make_graph()
        key = registry.register(g)
        with pytest.raises(ValueError):
            registry.register(g.copy(), name="prod")
        assert "prod" not in registry
        # same name for the same content is an idempotent no-op
        named = registry.register(make_graph(seed=8), name="other")
        assert registry.register(make_graph(seed=8), name="other") == named

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            GraphRegistry().get("nope")

    def test_mutation_detected(self):
        registry = GraphRegistry()
        g = make_graph()
        key = registry.register(g)
        assert registry.get(key).is_current()
        g.add_edge(0, 23, 7.0)
        assert not registry.get(key).is_current()

    def test_revalidate_refreshes_fingerprint_and_version(self):
        registry = GraphRegistry()
        g = make_graph()
        key = registry.register(g)
        old_fingerprint = registry.get(key).fingerprint
        g.add_edge(0, 23, 7.0)
        assert registry.revalidate(key) is True
        entry = registry.get(key)
        assert entry.is_current()
        assert entry.fingerprint != old_fingerprint
        assert entry.fingerprint == graph_fingerprint(g)
        # no drift -> no-op
        assert registry.revalidate(key) is False

    def test_unregister(self):
        registry = GraphRegistry()
        g = make_graph()
        key = registry.register(g)
        registry.unregister(key)
        assert key not in registry
        # content can be registered again afterwards
        assert registry.register(g) == key

    def test_register_original_content_after_mutation_is_not_a_collision(self):
        # a's fingerprint index entry goes stale when a mutates; registering
        # a graph equal to a's ORIGINAL content must succeed (fresh handle),
        # not die with a spurious FingerprintCollisionError
        registry = GraphRegistry()
        a = make_graph(seed=1)
        snapshot = a.copy()
        key_a = registry.register(a)
        a.add_edge(0, 23, 7.0)
        key_b = registry.register(snapshot)
        assert key_b != key_a
        assert registry.get(key_b).graph is snapshot
        # and a's entry was revalidated along the way
        assert registry.get(key_a).is_current()
        # the disambiguated handle keeps deduplicating
        assert registry.register(snapshot.copy()) == key_b

    def test_repeated_drift_keeps_fingerprint_index_consistent(self):
        # g1 drifts into g2's content and then away again; g2's index
        # mapping must survive so its content still deduplicates
        registry = GraphRegistry()
        g1 = WeightedGraph(3)
        g1.add_edge(0, 1, 1.0)
        g2 = WeightedGraph(3)
        g2.add_edge(0, 1, 1.0)
        g2.add_edge(1, 2, 1.0)
        key1 = registry.register(g1, name="g1")
        key2 = registry.register(g2, name="g2")
        g1.add_edge(1, 2, 1.0)  # g1 now equals g2's content
        registry.revalidate(key1)
        g1.add_edge(0, 2, 1.0)  # and drifts away again
        registry.revalidate(key1)
        assert registry.register(g2.copy()) == key2  # dedup still works
        registry.unregister(key2)
        assert key2 not in registry

    def test_fingerprint_collision_detected(self):
        # A deliberately broken fingerprint maps every graph to one digest;
        # the registry must detect the content mismatch, not alias artifacts.
        registry = GraphRegistry(fingerprint_fn=lambda graph: "constant")
        registry.register(make_graph(seed=1))
        with pytest.raises(FingerprintCollisionError):
            registry.register(make_graph(seed=2))

    def test_collision_on_revalidate_detected(self):
        counter = iter(["fp-a", "fp-b", "fp-b"])
        registry = GraphRegistry(fingerprint_fn=lambda graph: next(counter))
        g = make_graph(seed=1)
        other = make_graph(seed=2)
        key_g = registry.register(g)  # fp-a
        registry.register(other)  # fp-b
        g.add_edge(0, 23, 7.0)  # drift; next fingerprint call returns fp-b
        with pytest.raises(FingerprintCollisionError):
            registry.revalidate(key_g)
