"""Traffic harness: deterministic traces, report invariants, answer comparison."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    LaplacianService,
    TrafficConfig,
    compare_answers,
    generate_trace,
    run_trace,
)

SIZES = [30, 24]


def make_graphs():
    """Fresh identical graph objects per service, so replays stay independent."""
    return [
        generators.grid_graph(5, 6),
        generators.random_weighted_graph(24, average_degree=4, seed=5),
    ]


def make_service():
    service = LaplacianService(t_override=2)
    keys = [service.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())]
    return service, keys


class TestGenerateTrace:
    def test_same_config_produces_identical_trace(self):
        config = TrafficConfig(seed=11, queries=60, clients=3)
        first = generate_trace(SIZES, config)
        second = generate_trace(SIZES, config)
        assert first.events == second.events
        assert first.n_graphs == second.n_graphs == len(SIZES)

    def test_different_seed_produces_different_trace(self):
        first = generate_trace(SIZES, TrafficConfig(seed=1, queries=60))
        second = generate_trace(SIZES, TrafficConfig(seed=2, queries=60))
        assert first.events != second.events

    def test_events_are_well_formed(self):
        config = TrafficConfig(seed=3, queries=80, clients=4)
        trace = generate_trace(SIZES, config)
        kinds = {kind for kind, _ in config.mix}
        assert len(trace.events) == config.queries
        for event in trace.events:
            assert event.kind in kinds
            assert 0 <= event.graph < len(SIZES)
            assert event.client == event.index % config.clients
            payload = event.payload_dict()
            n = SIZES[event.graph]
            if event.kind == "resistance":
                assert 0 <= payload["u"] < n and 0 <= payload["v"] < n
                assert payload["u"] != payload["v"]
            elif event.kind == "resistance_batch":
                assert all(0 <= u < n and 0 <= v < n for u, v in payload["pairs"])
            elif event.kind == "mutate":
                assert payload["weight"] > 0

    def test_zipf_popularity_is_heavy_tailed(self):
        trace = generate_trace([40] * 6, TrafficConfig(seed=9, queries=300, zipf_alpha=1.4))
        counts = np.bincount([e.graph for e in trace.events], minlength=6)
        assert counts.max() > 2 * np.median(counts)


class TestRunTrace:
    def test_report_accounts_for_every_event(self):
        service, keys = make_service()
        trace = generate_trace(SIZES, TrafficConfig(seed=7, queries=30, clients=3))
        report = run_trace(service, keys, SIZES, trace, concurrent=True)
        assert report.events_total == 30
        assert report.ok + report.shed + report.failed == report.events_total
        assert report.failed == 0
        assert report.seconds > 0
        assert report.throughput > 0
        service.close()

    def test_sequential_replays_match_across_services(self):
        trace = generate_trace(SIZES, TrafficConfig(seed=13, queries=25, clients=2))
        service_a, keys_a = make_service()
        service_b, keys_b = make_service()
        report_a = run_trace(
            service_a, keys_a, SIZES, trace, concurrent=False, record_answers=True
        )
        report_b = run_trace(
            service_b, keys_b, SIZES, trace, concurrent=False, record_answers=True
        )
        compared, worst = compare_answers(report_a, report_b, atol=1e-8)
        assert compared > 0
        assert worst <= 1e-8
        service_a.close()
        service_b.close()

    def test_compare_answers_raises_on_divergence(self):
        service, keys = make_service()
        trace = generate_trace(
            SIZES, TrafficConfig(seed=17, queries=10, mix=(("solve", 1.0),))
        )
        report = run_trace(
            service, keys, SIZES, trace, concurrent=False, record_answers=True
        )
        tampered_index = next(iter(report.answers))
        import copy

        other = copy.deepcopy(report)
        other.answers[tampered_index] = (
            np.asarray(other.answers[tampered_index], dtype=float) + 1.0
        )
        with pytest.raises(AssertionError):
            compare_answers(report, other, atol=1e-8)
        service.close()

    def test_mutations_are_applied_to_the_registered_graph(self):
        service, keys = make_service()
        trace = generate_trace(
            SIZES, TrafficConfig(seed=23, queries=12, mix=(("mutate", 1.0),))
        )
        versions_before = [service.registry.get(k).graph.version for k in keys]
        report = run_trace(service, keys, SIZES, trace, concurrent=False)
        assert report.ok == 12
        versions_after = [service.registry.get(k).graph.version for k in keys]
        assert sum(versions_after) > sum(versions_before)
        service.close()

    def test_summary_digest_shape(self):
        service, keys = make_service()
        trace = generate_trace(SIZES, TrafficConfig(seed=29, queries=8))
        summary = run_trace(service, keys, SIZES, trace, concurrent=False).summary()
        for field in (
            "events_total",
            "ok",
            "shed",
            "failed",
            "throughput_qps",
            "shed_rate",
            "latency_p50",
            "latency_p99",
        ):
            assert field in summary
        assert summary["latency_p99"] >= summary["latency_p50"] >= 0.0
        service.close()
