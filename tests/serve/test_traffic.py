"""Traffic harness: deterministic traces, report invariants, answer comparison."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    ClientRetryPolicy,
    LaplacianService,
    ServiceOverloadedError,
    TrafficConfig,
    compare_answers,
    generate_trace,
    run_trace,
)

SIZES = [30, 24]


def make_graphs():
    """Fresh identical graph objects per service, so replays stay independent."""
    return [
        generators.grid_graph(5, 6),
        generators.random_weighted_graph(24, average_degree=4, seed=5),
    ]


def make_service():
    service = LaplacianService(t_override=2)
    keys = [service.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())]
    return service, keys


class TestGenerateTrace:
    def test_same_config_produces_identical_trace(self):
        config = TrafficConfig(seed=11, queries=60, clients=3)
        first = generate_trace(SIZES, config)
        second = generate_trace(SIZES, config)
        assert first.events == second.events
        assert first.n_graphs == second.n_graphs == len(SIZES)

    def test_different_seed_produces_different_trace(self):
        first = generate_trace(SIZES, TrafficConfig(seed=1, queries=60))
        second = generate_trace(SIZES, TrafficConfig(seed=2, queries=60))
        assert first.events != second.events

    def test_events_are_well_formed(self):
        config = TrafficConfig(seed=3, queries=80, clients=4)
        trace = generate_trace(SIZES, config)
        kinds = {kind for kind, _ in config.mix}
        assert len(trace.events) == config.queries
        for event in trace.events:
            assert event.kind in kinds
            assert 0 <= event.graph < len(SIZES)
            assert event.client == event.index % config.clients
            payload = event.payload_dict()
            n = SIZES[event.graph]
            if event.kind == "resistance":
                assert 0 <= payload["u"] < n and 0 <= payload["v"] < n
                assert payload["u"] != payload["v"]
            elif event.kind == "resistance_batch":
                assert all(0 <= u < n and 0 <= v < n for u, v in payload["pairs"])
            elif event.kind == "mutate":
                assert payload["weight"] > 0

    def test_zipf_popularity_is_heavy_tailed(self):
        trace = generate_trace([40] * 6, TrafficConfig(seed=9, queries=300, zipf_alpha=1.4))
        counts = np.bincount([e.graph for e in trace.events], minlength=6)
        assert counts.max() > 2 * np.median(counts)


class TestRunTrace:
    def test_report_accounts_for_every_event(self):
        service, keys = make_service()
        trace = generate_trace(SIZES, TrafficConfig(seed=7, queries=30, clients=3))
        report = run_trace(service, keys, SIZES, trace, concurrent=True)
        assert report.events_total == 30
        assert report.ok + report.shed + report.failed == report.events_total
        assert report.failed == 0
        assert report.seconds > 0
        assert report.throughput > 0
        service.close()

    def test_sequential_replays_match_across_services(self):
        trace = generate_trace(SIZES, TrafficConfig(seed=13, queries=25, clients=2))
        service_a, keys_a = make_service()
        service_b, keys_b = make_service()
        report_a = run_trace(
            service_a, keys_a, SIZES, trace, concurrent=False, record_answers=True
        )
        report_b = run_trace(
            service_b, keys_b, SIZES, trace, concurrent=False, record_answers=True
        )
        compared, worst = compare_answers(report_a, report_b, atol=1e-8)
        assert compared > 0
        assert worst <= 1e-8
        service_a.close()
        service_b.close()

    def test_compare_answers_raises_on_divergence(self):
        service, keys = make_service()
        trace = generate_trace(
            SIZES, TrafficConfig(seed=17, queries=10, mix=(("solve", 1.0),))
        )
        report = run_trace(
            service, keys, SIZES, trace, concurrent=False, record_answers=True
        )
        tampered_index = next(iter(report.answers))
        import copy

        other = copy.deepcopy(report)
        other.answers[tampered_index] = (
            np.asarray(other.answers[tampered_index], dtype=float) + 1.0
        )
        with pytest.raises(AssertionError):
            compare_answers(report, other, atol=1e-8)
        service.close()

    def test_mutations_are_applied_to_the_registered_graph(self):
        service, keys = make_service()
        trace = generate_trace(
            SIZES, TrafficConfig(seed=23, queries=12, mix=(("mutate", 1.0),))
        )
        versions_before = [service.registry.get(k).graph.version for k in keys]
        report = run_trace(service, keys, SIZES, trace, concurrent=False)
        assert report.ok == 12
        versions_after = [service.registry.get(k).graph.version for k in keys]
        assert sum(versions_after) > sum(versions_before)
        service.close()

    def test_summary_digest_shape(self):
        service, keys = make_service()
        trace = generate_trace(SIZES, TrafficConfig(seed=29, queries=8))
        summary = run_trace(service, keys, SIZES, trace, concurrent=False).summary()
        for field in (
            "events_total",
            "ok",
            "shed",
            "failed",
            "throughput_qps",
            "shed_rate",
            "latency_p50",
            "latency_p99",
        ):
            assert field in summary
        assert summary["latency_p99"] >= summary["latency_p50"] >= 0.0
        service.close()


class ShedThenServe:
    """Stub front door: sheds each event's first ``sheds`` attempts, then answers.

    Only the ``effective_resistance`` surface is implemented -- retry tests
    drive it with a resistance-only mix so the stub stays trivial.
    """

    def __init__(self, sheds: int, retry_after=0.002):
        self.sheds = sheds
        self.retry_after = retry_after
        self.attempts = {}

    def effective_resistance(self, key, u, v, eta=None):
        slot = (key, u, v)
        count = self.attempts[slot] = self.attempts.get(slot, 0) + 1
        if count <= self.sheds:
            raise ServiceOverloadedError(
                "stub shed", retry_after_seconds=self.retry_after
            )
        return float(u + v)


class TestClientRetry:
    MIX = (("resistance", 1.0),)

    def test_retried_then_ok_counts_ok_not_shed(self):
        trace = generate_trace(
            SIZES, TrafficConfig(seed=31, queries=12, clients=3, mix=self.MIX)
        )
        stub = ShedThenServe(sheds=2)
        policy = ClientRetryPolicy(max_retries=3, backoff_seconds=0.001, seed=9)
        report = run_trace(
            stub, ["a", "b"], SIZES, trace, concurrent=False, retry_policy=policy
        )
        assert report.ok == report.events_total == 12
        assert report.shed == 0 and report.failed == 0
        assert report.retried_ok == 12
        assert report.retried_total == 24  # two retries per event
        assert all(count == 2 for count in report.retries_by_event.values())
        summary = report.summary()
        assert summary["retried_total"] == 24
        assert summary["retried_ok"] == 12
        assert summary["shed_rate"] == 0.0

    def test_exhausted_retries_count_shed_exactly_once(self):
        trace = generate_trace(
            SIZES, TrafficConfig(seed=37, queries=6, clients=2, mix=self.MIX)
        )
        stub = ShedThenServe(sheds=99)
        policy = ClientRetryPolicy(max_retries=2, backoff_seconds=0.001, seed=9)
        report = run_trace(
            stub, ["a", "b"], SIZES, trace, concurrent=False, retry_policy=policy
        )
        assert report.shed == report.events_total == 6
        assert report.ok == 0 and report.retried_ok == 0
        assert report.retried_total == 12  # max_retries per event
        assert report.ok + report.shed + report.failed == report.events_total

    def test_no_policy_keeps_legacy_single_attempt_behaviour(self):
        trace = generate_trace(
            SIZES, TrafficConfig(seed=41, queries=5, clients=1, mix=self.MIX)
        )
        stub = ShedThenServe(sheds=1)
        report = run_trace(stub, ["a", "b"], SIZES, trace, concurrent=False)
        assert report.shed == report.events_total == 5
        assert report.retried_total == 0

    def test_delay_honours_hint_and_falls_back_to_backoff(self):
        policy = ClientRetryPolicy(
            backoff_seconds=0.02,
            backoff_multiplier=2.0,
            max_backoff_seconds=0.5,
            jitter=0.25,
            seed=4,
        )
        rng = policy.rng_for(0)
        hinted = policy.delay(0, 0.1, rng)
        assert 0.1 <= hinted <= 0.1 * 1.25
        fallback = policy.delay(2, None, rng)  # third retry: 0.02 * 2**2
        assert 0.08 <= fallback <= 0.08 * 1.25
        capped = policy.delay(0, 30.0, rng)
        assert capped <= 0.5 * 1.25
        blunt = ClientRetryPolicy(honor_retry_after=False, jitter=0.0)
        assert blunt.delay(0, 30.0, blunt.rng_for(1)) == blunt.backoff_seconds

    def test_jitter_streams_are_deterministic_per_client(self):
        policy = ClientRetryPolicy(seed=12)
        a = [policy.rng_for(3).random() for _ in range(2)]
        b = [policy.rng_for(3).random() for _ in range(2)]
        assert a == b
        assert policy.rng_for(3).random() != policy.rng_for(4).random()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ClientRetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ClientRetryPolicy(backoff_seconds=0.0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(jitter=-0.1)
