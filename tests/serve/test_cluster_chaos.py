"""Cluster-level chaos: replicated shards under kills, wedges and flaky links.

These tests are marked both ``chaos`` and ``cluster``: they spawn real
worker processes (heavy, like the cluster suite) *and* inject deterministic
process-tier faults (kill / wedge / heartbeat-drop, driven by the parent's
health monitor through :meth:`FaultPlan.cluster_chaos`).  CI runs them as
their own dedicated step (``-m "chaos and cluster"``).

The headline assertion is the availability contract: a replicated cluster
in which **every** worker is killed once mid-trace still completes a mixed
mutate/query trace with *zero failed events*, and its recorded answers
match a fault-free single-process run of the identical trace to ``1e-8``.
"""

import threading
import time

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    ClusterService,
    FaultPlan,
    FaultRule,
    HealthPolicy,
    LaplacianService,
    TrafficConfig,
    WorkerConfig,
    compare_answers,
    generate_trace,
    run_trace,
)

pytestmark = [pytest.mark.chaos, pytest.mark.cluster]

SIZES = [40, 24, 30]


def make_graphs():
    """Fresh identical graph objects per service, so replays stay independent."""
    return [
        generators.grid_graph(4, 10),
        generators.random_weighted_graph(24, average_degree=4, seed=5),
        generators.grid_graph(5, 6),
    ]


def make_cluster(num_workers=2, **kwargs):
    kwargs.setdefault("worker_config", WorkerConfig(t_override=2))
    return ClusterService(num_workers=num_workers, **kwargs)


class TestKillChaos:
    def test_killing_every_worker_mid_trace_loses_nothing(self):
        trace = generate_trace(
            SIZES, TrafficConfig(seed=29, queries=120, clients=4)
        )
        # fault-free baseline: the same trace on a single-process service
        single = LaplacianService(t_override=2)
        single_keys = [
            single.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())
        ]
        baseline = run_trace(
            single, single_keys, SIZES, trace, concurrent=False, record_answers=True
        )
        single.close()
        assert baseline.failed == 0 and baseline.shed == 0

        cluster = make_cluster(num_workers=2)  # replication_factor defaults to 2
        try:
            keys = [
                cluster.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())
            ]
            outcome = {}

            def runner():
                outcome["report"] = run_trace(
                    cluster,
                    keys,
                    SIZES,
                    trace,
                    concurrent=False,
                    record_answers=True,
                )

            thread = threading.Thread(target=runner, daemon=True)
            thread.start()
            # kill each worker once, sequentially, while the trace runs
            for victim in ("worker-0", "worker-1"):
                time.sleep(0.3)
                cluster.kill_worker(victim)
                assert cluster.wait_recovered(timeout=60.0), (
                    f"cluster did not recover after killing {victim}"
                )
            thread.join(timeout=300.0)
            assert not thread.is_alive(), "trace replay hung"
            report = outcome["report"]
            # the availability contract: every event resolved, none failed
            assert report.ok + report.shed + report.failed == report.events_total
            assert report.failed == 0, f"failed events: {report.failures_by_type}"
            assert report.shed == 0  # no admission control configured
            compared, worst = compare_answers(baseline, report, atol=1e-8)
            assert compared > 0
            assert worst <= 1e-8
            metrics = cluster.metrics_snapshot()
            assert metrics["worker_crashes"] >= 2
            assert metrics["worker_respawns"] >= 2
        finally:
            cluster.close()


class TestWedgeChaos:
    FAST = HealthPolicy(
        probe_interval_seconds=0.1, suspect_misses=2, dead_misses=6
    )

    def test_wedged_worker_is_detected_and_respawned_unprompted(self):
        cluster = make_cluster(num_workers=2, replication_factor=1, health=self.FAST)
        try:
            key = cluster.register(make_graphs()[0], name="g0")
            b = np.zeros(SIZES[0])
            b[0], b[-1] = 1.0, -1.0
            expected = cluster.solve(key, b).solution
            victim = cluster.shard_of(key)
            pid_before = cluster._workers[victim].process.pid
            time.sleep(0.5)  # let the first pings land (ends startup grace)
            cluster.wedge_worker(victim, 30.0)  # hang, not crash
            # no operator action: the monitor's dead ladder (6 misses at
            # 0.1s cadence) kills the wedged process and respawn revives it
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if cluster._health_kills_total >= 1:
                    break
                time.sleep(0.05)
            assert cluster._health_kills_total >= 1, "monitor never killed the wedge"
            assert cluster.wait_recovered(timeout=30.0)
            assert cluster._workers[victim].process.pid != pid_before
            # the shard serves again, identically
            got = cluster.solve(key, b).solution
            np.testing.assert_allclose(got, expected, atol=1e-8)
            metrics = cluster.metrics_snapshot()
            assert metrics["health_kills"] >= 1
            assert metrics["worker_respawns"] >= 1
        finally:
            cluster.close()

    def test_fault_plan_drives_the_wedge_deterministically(self):
        plan = FaultPlan.cluster_chaos(
            seed=7, kill_rate=0.0, wedge_rate=1.0, wedge_seconds=30.0,
            max_wedges=1, worker="worker-0",
        )
        cluster = make_cluster(num_workers=2, health=self.FAST)
        try:
            # register first: a wedge queued ahead of the register message
            # would (correctly) stall registration for the wedge duration
            key = cluster.register(make_graphs()[0], name="g0")
            injector = cluster.arm_worker_faults(plan)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if injector.fired_total >= 1 and cluster._health_kills_total >= 1:
                    break
                time.sleep(0.05)
            assert injector.fired_total >= 1, "the wedge rule never fired"
            assert cluster._health_kills_total >= 1
            cluster.arm_worker_faults(None)  # disarm so recovery sticks
            assert cluster.wait_recovered(timeout=30.0)
            b = np.zeros(SIZES[0])
            b[0], b[-1] = 1.0, -1.0
            assert cluster.solve(key, b).solution.shape == (SIZES[0],)
        finally:
            cluster.close()


class TestHeartbeatChaos:
    def test_dropped_heartbeats_mark_suspect_then_recover(self):
        # dead threshold far away: drops must only ever reach *suspect*
        policy = HealthPolicy(
            probe_interval_seconds=0.1, suspect_misses=2, dead_misses=200
        )
        plan = FaultPlan(
            rules=(
                FaultRule(
                    op="worker_drop_ping",
                    probability=1.0,
                    times=4,
                    worker="worker-0",
                ),
            ),
            seed=3,
        )
        cluster = make_cluster(num_workers=2, health=policy, worker_faults=plan)
        try:
            keys = [
                cluster.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())
            ]
            handle = cluster._workers["worker-0"]
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not handle.suspect:
                time.sleep(0.05)
            assert handle.suspect, "dropped heartbeats never reached suspect"
            # reads still serve while the worker is suspect (replicas cover)
            b = np.zeros(SIZES[0])
            b[0], b[-1] = 1.0, -1.0
            assert cluster.solve(keys[0], b).solution.shape == (SIZES[0],)
            # the drop rule is capped at 4 firings: pings resume, the worker
            # climbs back down the ladder without ever being killed
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and handle.suspect:
                time.sleep(0.05)
            assert not handle.suspect, "worker never recovered from suspect"
            metrics = cluster.metrics_snapshot()
            assert metrics["workers_suspected_total"] >= 1
            assert metrics["health_kills"] == 0
            assert metrics["worker_crashes"] == 0
        finally:
            cluster.close()
