"""Shutdown races: close() vs inflight flushes, late tickets, interrupts."""

import threading
import time

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    FaultPlan,
    FaultRule,
    LaplacianService,
    solve_query,
)


@pytest.fixture
def graph():
    return generators.random_weighted_graph(40, average_degree=6, seed=17)


def make_service(**kwargs):
    kwargs.setdefault("t_override", 2)
    kwargs.setdefault("auto_flush", False)
    return LaplacianService(**kwargs)


class TestCloseDuringFlush:
    def test_close_concurrent_with_inflight_flush(self, graph, rng):
        """close() while another thread's flush is executing must neither hang
        nor strand a ticket: execution is serialised behind the execute lock,
        and close()'s own flush drains whatever is still pending."""
        service = make_service(
            faults=FaultPlan(
                # slow every batch down so close() reliably overlaps execution
                (FaultRule(op="execute", fail=False, delay_seconds=0.05),)
            )
        )
        key = service.register(graph)
        tickets = [
            service.submit(solve_query(key, rng.normal(size=graph.n)))
            for _ in range(6)
        ]
        flusher = threading.Thread(target=service.flush)
        flusher.start()
        time.sleep(0.01)  # land close() inside the inflight execution window
        service.close()
        flusher.join(timeout=30.0)
        assert not flusher.is_alive()
        for ticket in tickets:
            assert ticket.done()
            assert np.all(np.isfinite(ticket.result(timeout=5.0).value.solution))

    def test_submit_after_close_rejected(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(solve_query(key, rng.normal(size=graph.n)))

    def test_close_idempotent(self, graph):
        service = make_service()
        service.register(graph)
        service.close()
        service.close()  # second close: no hang, no error


class TestLateTickets:
    def test_result_timeout_then_late_resolution(self, graph, rng):
        """A ticket whose result() times out is not poisoned: once the flush
        lands, the same ticket resolves normally."""
        service = make_service()
        key = service.register(graph)
        ticket = service.submit(solve_query(key, rng.normal(size=graph.n)))
        with pytest.raises(TimeoutError, match=str(ticket.query.query_id)):
            ticket.result(timeout=0.01)  # nothing has flushed yet
        assert not ticket.done()
        service.flush()
        report = ticket.result(timeout=5.0).value
        assert np.all(np.isfinite(report.solution))

    def test_waiter_blocked_in_result_is_released_by_flush(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        ticket = service.submit(solve_query(key, rng.normal(size=graph.n)))
        seen = {}

        def wait():
            seen["value"] = ticket.result(timeout=30.0).value

        waiter = threading.Thread(target=wait)
        waiter.start()
        time.sleep(0.02)
        service.flush()
        waiter.join(timeout=30.0)
        assert not waiter.is_alive()
        assert np.all(np.isfinite(seen["value"].solution))


class TestInterruptContainment:
    def test_keyboard_interrupt_unblocks_every_waiter(self, graph, rng, monkeypatch):
        """KeyboardInterrupt mid-flush must propagate to the flushing caller
        AND fail every undelivered ticket, so threads blocked in result()
        wake instead of waiting forever on work that will never finish."""
        service = make_service()
        key = service.register(graph)
        tickets = [
            service.submit(solve_query(key, rng.normal(size=graph.n)))
            for _ in range(4)
        ]

        def interrupted(batch):
            raise KeyboardInterrupt()

        monkeypatch.setattr(service.planner, "execute_batch", interrupted)
        with pytest.raises(KeyboardInterrupt):
            service.flush()
        for ticket in tickets:
            assert ticket.done()
            with pytest.raises(KeyboardInterrupt):
                ticket.result(timeout=1.0)

    def test_keyboard_interrupt_skips_bisection(self, graph, rng, monkeypatch):
        # bisection catches Exception only: an interrupt must not trigger
        # O(log n) pointless re-executions on its way out
        service = make_service()
        key = service.register(graph)
        for _ in range(8):
            service.submit(solve_query(key, rng.normal(size=graph.n)))
        calls = []

        def interrupted(batch):
            calls.append(batch.size)
            raise KeyboardInterrupt()

        monkeypatch.setattr(service.planner, "execute_batch", interrupted)
        with pytest.raises(KeyboardInterrupt):
            service.flush()
        assert calls == [8]  # one attempt, no splitting
