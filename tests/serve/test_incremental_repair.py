"""Serving-layer incremental repair: small deltas update artifacts in place.

The contract under test: after mutating a registered graph, every query is
answered against the *current* content (1e-8 agreement with a cold service
that only ever saw the mutated graph), and -- when the delta is repairable --
the answers come from repaired artifacts (``cache.stats.repairs``) rather
than rebuilt ones (``cache.stats.misses``).
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.linalg.sparse_backend import RepairableGroundedSolver
from repro.serve import ArtifactCache, LaplacianService
from repro.solvers.laplacian import SolverPreprocessing

TOL = 1e-8
T_OVERRIDE = 2


def make_service(**kwargs):
    kwargs.setdefault("t_override", T_OVERRIDE)
    kwargs.setdefault("auto_flush", False)
    return LaplacianService(**kwargs)


def fresh_resistances(graph, pairs):
    """Ground truth from a service that only ever saw the mutated content."""
    with make_service() as svc:
        return svc.effective_resistances(svc.register(graph.copy()), pairs)


@pytest.fixture
def graph():
    return generators.random_weighted_graph(300, average_degree=8, seed=7)


PAIRS = [(0, 5), (1, 9), (10, 250), (42, 42), (7, 120)]


class TestInsertionRepair:
    def test_repaired_answers_match_cold_rebuild(self, graph):
        service = make_service()
        key = service.register(graph)
        rng = np.random.default_rng(0)
        b = rng.normal(size=graph.n)
        service.solve(key, b, eps=1e-8)
        service.effective_resistances(key, PAIRS)

        graph.add_edge(2, 290, 1.7)
        repaired = service.effective_resistances(key, PAIRS)
        np.testing.assert_allclose(
            repaired, fresh_resistances(graph, PAIRS), atol=TOL
        )
        report = service.solve(key, b, eps=1e-8)
        # the repaired preconditioner still meets the eps contract against
        # the mutated graph's exact solution
        x = report.solution
        with make_service() as ref:
            exact = ref.solve(ref.register(graph.copy()), b, eps=1e-8).solution
        assert np.linalg.norm(x - exact) <= 1e-6 * max(1.0, np.linalg.norm(exact))

    def test_insertion_repairs_instead_of_rebuilding(self, graph):
        service = make_service()
        key = service.register(graph)
        service.solve(key, np.random.default_rng(0).normal(size=graph.n))
        service.effective_resistances(key, PAIRS)
        misses_before = service.cache.stats.misses

        graph.add_edge(2, 290, 1.7)
        service.effective_resistances(key, PAIRS)
        service.solve(key, np.random.default_rng(1).normal(size=graph.n))
        stats = service.cache.stats
        # the dense oracle and the solver preprocessing -- the two artifacts
        # the post-mutation queries actually looked up -- were repaired; the
        # grounded solver was never looked up again, so its repair is still
        # pending (lazily skipped, not paid)
        assert stats.repairs >= 2
        # ...and the queries after the mutation were served from them: no new
        # artifact build beyond the memoised certification-free baseline
        assert stats.misses == misses_before

    def test_repaired_artifacts_rekeyed_to_current_identity(self, graph):
        service = make_service()
        key = service.register(graph)
        service.effective_resistances(key, PAIRS)
        graph.add_edge(2, 290, 1.7)
        service.effective_resistances(key, PAIRS)
        entry = service.registry.get(key)
        assert entry.is_current()
        # the artifact the query looked up was migrated to the new identity
        oracles = [
            e for e in service.cache.entries() if e.kind == "resistance_oracle"
        ]
        assert [(e.graph_key, e.version) for e in oracles] == [
            (entry.fingerprint, entry.version)
        ]
        # while the never-again-looked-up grounded solver still sits at the
        # stale identity, unservable (lookups key on the new identity) but
        # with its repair pending for whenever it is next wanted
        grounded = [e for e in service.cache.entries() if e.kind == "grounded"]
        assert grounded and all(
            e.graph_key != entry.fingerprint for e in grounded
        )
        assert service.cache.pending_repair(entry.fingerprint, entry.version)

    def test_sequence_of_single_edge_mutations(self, graph):
        service = make_service()
        key = service.register(graph)
        service.effective_resistances(key, PAIRS)
        rng = np.random.default_rng(5)
        for _ in range(6):
            while True:
                u, v = (int(x) for x in rng.integers(0, graph.n, 2))
                if u != v and not graph.has_edge(u, v):
                    break
            graph.add_edge(u, v, float(rng.uniform(0.5, 2.0)))
            got = service.effective_resistances(key, PAIRS)
            np.testing.assert_allclose(got, fresh_resistances(graph, PAIRS), atol=TOL)
        assert service.cache.stats.repairs > 0


class TestRemovalPolicy:
    def test_removal_repairs_dense_oracle_in_place(self, graph):
        """A non-bridge removal rank-1-downdates the dense oracle in place.

        (Previously any removal conservatively rebuilt it; the denominator
        guard inside ``ResistanceOracle.apply_update`` is what refuses the
        bridge removals that would genuinely split a component.)  Correctness
        is anchored to a cold service that only ever saw the mutated graph.
        """
        service = make_service()
        key = service.register(graph)
        service.effective_resistances(key, PAIRS)
        oracle_entries = [
            e for e in service.cache.entries() if e.kind == "resistance_oracle"
        ]
        assert len(oracle_entries) == 1
        old_oracle = oracle_entries[0].value

        u, v, w = graph.edge_list()[10]
        graph.remove_edge(u, v)  # a random-graph edge: (almost surely) no bridge
        got = service.effective_resistances(key, PAIRS)
        np.testing.assert_allclose(got, fresh_resistances(graph, PAIRS), atol=TOL)
        new_entries = [
            e for e in service.cache.entries() if e.kind == "resistance_oracle"
        ]
        assert len(new_entries) == 1
        assert new_entries[0].value is old_oracle  # repaired, not rebuilt
        assert old_oracle.repairs_applied == 1

    def test_grounded_solver_downdates_on_removal(self, graph):
        service = make_service()
        key = service.register(graph)
        # force the exact splu path (no dense oracle) by raising the gate off
        service.planner.oracle_limit = 10
        service.effective_resistances(key, PAIRS)
        grounded = [e for e in service.cache.entries() if e.kind == "grounded"]
        assert len(grounded) == 1
        solver_before = grounded[0].value

        u, v, w = graph.edge_list()[10]
        graph.remove_edge(u, v)  # a random-graph edge: (almost surely) no bridge
        got = service.effective_resistances(key, PAIRS)
        np.testing.assert_allclose(got, fresh_resistances(graph, PAIRS), atol=TOL)
        grounded_after = [e for e in service.cache.entries() if e.kind == "grounded"]
        assert grounded_after[0].value is solver_before  # down-dated in place
        assert solver_before.updates_applied == 1

    def test_bridge_removal_falls_back_to_rebuild(self):
        graph = generators.path_graph(40)
        service = make_service()
        key = service.register(graph)
        service.planner.oracle_limit = 10  # exercise the grounded path
        service.effective_resistances(key, [(0, 5), (3, 30)])
        graph.remove_edge(10, 11)  # disconnects: not rank-1 repairable
        got = service.effective_resistances(key, [(0, 5), (3, 30), (5, 20)])
        np.testing.assert_allclose(
            got, fresh_resistances(graph, [(0, 5), (3, 30), (5, 20)]), atol=TOL
        )
        assert np.isinf(got[2])  # 5 and 20 are now in different components


class TestStructuralAndBudgetFallbacks:
    def test_cross_component_insertion_rebuilds(self):
        graph = WeightedGraph(
            60,
            edges=[(i, i + 1, 1.0) for i in range(29)]
            + [(i, i + 1, 1.0) for i in range(30, 59)]
            + [(0, 29, 1.0), (30, 59, 1.0)],
        )
        service = make_service()
        key = service.register(graph)
        service.planner.oracle_limit = 10
        pairs = [(0, 10), (31, 45), (5, 40)]
        before = service.effective_resistances(key, pairs)
        assert np.isinf(before[2])
        graph.add_edge(29, 30, 2.0)  # merges the two cycles
        got = service.effective_resistances(key, pairs)
        np.testing.assert_allclose(got, fresh_resistances(graph, pairs), atol=TOL)
        assert np.isfinite(got[2])
        assert service.cache.stats.repairs == 0  # nothing was repairable

    def test_exhausted_budget_triggers_refactorisation(self):
        graph = generators.random_weighted_graph(100, average_degree=8, seed=3)
        service = make_service()
        key = service.register(graph)
        service.planner.oracle_limit = 10
        service.effective_resistances(key, [(0, 5)])
        (grounded,) = [e for e in service.cache.entries() if e.kind == "grounded"]
        grounded.value.max_updates = 2  # force the threshold quickly
        solver_before = grounded.value
        rng = np.random.default_rng(9)
        for i in range(4):
            while True:
                u, v = (int(x) for x in rng.integers(0, graph.n, 2))
                if u != v and not graph.has_edge(u, v):
                    break
            graph.add_edge(u, v, 1.0)
            got = service.effective_resistances(key, [(0, 5), (u, v)])
            np.testing.assert_allclose(
                got, fresh_resistances(graph, [(0, 5), (u, v)]), atol=TOL
            )
        (grounded_after,) = [
            e for e in service.cache.entries() if e.kind == "grounded"
        ]
        # the third mutation exceeded the budget: the solver was rebuilt
        assert grounded_after.value is not solver_before

    def test_long_delta_rebuilds(self, graph):
        service = make_service()
        key = service.register(graph)
        service.effective_resistances(key, PAIRS)
        service.planner.repair_delta_limit = 3
        rng = np.random.default_rng(11)
        for _ in range(5):  # one revalidation sees a 5-record delta
            while True:
                u, v = (int(x) for x in rng.integers(0, graph.n, 2))
                if u != v and not graph.has_edge(u, v):
                    break
            graph.add_edge(u, v, 1.0)
        got = service.effective_resistances(key, PAIRS)
        np.testing.assert_allclose(got, fresh_resistances(graph, PAIRS), atol=TOL)
        assert service.cache.stats.repairs == 0

    def test_delta_clamped_to_fresh_update_budget(self):
        # n = 100 -> fresh budget isqrt(100) = 10: an 12-record delta is under
        # REPAIR_DELTA_LIMIT but would exhaust a fresh solver mid-walk, so it
        # must rebuild up front instead of paying a partial repair first
        graph = generators.random_weighted_graph(100, average_degree=8, seed=3)
        service = make_service()
        key = service.register(graph)
        service.effective_resistances(key, [(0, 5), (1, 9)])
        rng = np.random.default_rng(13)
        for _ in range(12):
            while True:
                u, v = (int(x) for x in rng.integers(0, graph.n, 2))
                if u != v and not graph.has_edge(u, v):
                    break
            graph.add_edge(u, v, 1.0)
        got = service.effective_resistances(key, [(0, 5), (1, 9)])
        np.testing.assert_allclose(
            got, fresh_resistances(graph, [(0, 5), (1, 9)]), atol=TOL
        )
        assert service.cache.stats.repairs == 0

    def test_concurrent_repairers_cannot_double_apply(self, graph):
        # two services sharing one cache race to repair the same mutation;
        # take_stale_entry pops the stale artifact atomically, so exactly one
        # lazy walk can ever hold it and the loser serves the repaired entry
        # instead of re-applying the rank-1 update to it
        cache = ArtifactCache()
        s1 = make_service(cache=cache)
        s2 = make_service(cache=cache)
        k1 = s1.register(graph)
        k2 = s2.register(graph)
        s1.effective_resistances(k1, PAIRS)
        graph.add_edge(2, 290, 1.7)

        takes = []
        original = cache.take_stale_entry

        def spying_take(*args, **kwargs):
            result = original(*args, **kwargs)
            takes.append(result)
            return result

        cache.take_stale_entry = spying_take
        r1 = s1.effective_resistances(k1, PAIRS)
        r2 = s2.effective_resistances(k2, PAIRS)
        truth = fresh_resistances(graph, PAIRS)
        np.testing.assert_allclose(r1, truth, atol=TOL)
        np.testing.assert_allclose(r2, truth, atol=TOL)
        # the first lookup popped and repaired the stale oracle; the second
        # found the repaired entry already cached and never attempted a take
        popped = [t for t in takes if t is not None]
        assert len(popped) == 1
        (oracle,) = [e for e in cache.entries() if e.kind == "resistance_oracle"]
        assert oracle.value.repairs_applied == 1  # applied exactly once

    def test_repair_disabled_knob(self, graph):
        service = make_service(repair=False)
        key = service.register(graph)
        service.effective_resistances(key, PAIRS)
        graph.add_edge(2, 290, 1.7)
        got = service.effective_resistances(key, PAIRS)
        np.testing.assert_allclose(got, fresh_resistances(graph, PAIRS), atol=TOL)
        assert service.cache.stats.repairs == 0
        assert service.cache.stats.invalidations > 0


class TestSketchedRepair:
    def make_sketched_service(self, graph):
        service = make_service(cache=ArtifactCache())
        service.planner.oracle_limit = 100  # graph.n > gate: sketched regime
        return service, service.register(graph)

    def test_sketched_oracle_repaired_and_contract_held(self):
        graph = generators.random_weighted_graph(400, average_degree=8, seed=5)
        service, key = self.make_sketched_service(graph)
        rng = np.random.default_rng(21)
        pairs = [
            (int(u), int(v))
            for u, v in zip(rng.integers(0, graph.n, 48), rng.integers(0, graph.n, 48))
        ]
        service.effective_resistances(key, pairs, eta=0.5)  # bulk: builds sketch
        (sketch,) = [
            e for e in service.cache.entries() if e.kind == "sketched_resistance"
        ]
        oracle_before = sketch.value

        graph.add_edge(3, 397, 1.1)
        approx = service.effective_resistances(key, pairs, eta=0.5)
        (sketch_after,) = [
            e for e in service.cache.entries() if e.kind == "sketched_resistance"
        ]
        assert sketch_after.value is oracle_before  # repaired in place
        assert oracle_before.appended == 1
        exact = service.effective_resistances(key, pairs)
        mask = np.isfinite(exact) & (exact > 0)
        rel = np.abs(approx[mask] - exact[mask]) / exact[mask]
        assert float(rel.max()) <= oracle_before.eta_effective <= 0.5

    def test_sketch_repaired_in_place_on_reweight(self):
        # a reweighted edge's sketch column is re-derived from its recorded
        # (seed_bits, ambient index) identity and corrected by one rank-1
        # update, so the sketch survives reweights without widening its bound
        graph = generators.random_weighted_graph(400, average_degree=8, seed=5)
        service, key = self.make_sketched_service(graph)
        rng = np.random.default_rng(22)
        pairs = [
            (int(u), int(v))
            for u, v in zip(rng.integers(0, graph.n, 48), rng.integers(0, graph.n, 48))
        ]
        service.effective_resistances(key, pairs, eta=0.5)
        (sketch,) = [
            e for e in service.cache.entries() if e.kind == "sketched_resistance"
        ]
        oracle_before = sketch.value
        u, v, w = graph.edge_list()[0]
        graph.add_edge(u, v, w + 1.0)  # reweight an existing edge
        approx = service.effective_resistances(key, pairs, eta=0.5)
        (sketch_after,) = [
            e for e in service.cache.entries() if e.kind == "sketched_resistance"
        ]
        assert sketch_after.value is oracle_before  # repaired in place
        assert oracle_before.reweighted == 1
        assert oracle_before.eta_effective <= 0.5  # insertion-free: no widening
        exact = service.effective_resistances(key, pairs)
        mask = np.isfinite(exact) & (exact > 0)
        rel = np.abs(approx[mask] - exact[mask]) / exact[mask]
        assert float(rel.max()) <= 0.5  # repaired sketch honours eta


class TestPreprocessingRepair:
    def test_solver_preprocessing_survives_insertion(self, graph):
        service = make_service()
        key = service.register(graph)
        b = np.random.default_rng(0).normal(size=graph.n)
        service.solve(key, b)
        (prep,) = [e for e in service.cache.entries() if e.kind == "preprocessing"]
        artifact = prep.value
        assert isinstance(artifact, SolverPreprocessing)
        assert isinstance(artifact.grounded, RepairableGroundedSolver)
        sparsifier_m = artifact.sparsifier.m

        graph.add_edge(2, 290, 1.7)
        service.solve(key, b)
        (prep_after,) = [
            e for e in service.cache.entries() if e.kind == "preprocessing"
        ]
        assert prep_after.value is artifact  # repaired, not rebuilt
        assert artifact.sparsifier.m == sparsifier_m + 1
        assert artifact.sparsifier_result is None  # transcript invalidated
        assert artifact.grounded.updates_applied == 1

    def test_weight_decrease_drops_preprocessing(self, graph):
        service = make_service()
        key = service.register(graph)
        b = np.random.default_rng(0).normal(size=graph.n)
        service.solve(key, b)
        (prep,) = [e for e in service.cache.entries() if e.kind == "preprocessing"]
        artifact = prep.value
        u, v, w = graph.edge_list()[0]
        graph.add_edge(u, v, w * 0.5)  # decrease: sparsifier lower bound at risk
        report = service.solve(key, b, eps=1e-8)
        with make_service() as ref:
            exact = ref.solve(ref.register(graph.copy()), b, eps=1e-8).solution
        assert np.linalg.norm(report.solution - exact) <= 1e-6 * max(
            1.0, np.linalg.norm(exact)
        )
        (prep_after,) = [
            e for e in service.cache.entries() if e.kind == "preprocessing"
        ]
        assert prep_after.value is not artifact  # rebuilt
