"""FaultRule/FaultPlan/FaultInjector: matching, determinism, caps, delays."""

import time

import pytest

from repro.serve import (
    FAULT_OPS,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    QueryBatch,
    TransientFaultError,
    disarmed_injector,
    resistance_query,
    solve_query,
)

import numpy as np


def _batch(*queries):
    first = queries[0]
    return QueryBatch(first.graph_key, first.kind, (), list(queries))


class TestFaultRuleValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultRule(op="explode")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(op="build", probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultRule(op="build", probability=-0.1)

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            FaultRule(op="build", times=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultRule(op="build", delay_seconds=-1.0)

    def test_every_documented_op_constructs(self):
        for op in FAULT_OPS:
            # a zero-second wedge is meaningless: the op requires a duration
            kwargs = {"delay_seconds": 0.5} if op == "worker_wedge" else {}
            FaultRule(op=op, **kwargs)


class TestSelectorsAndCaps:
    def test_build_rule_matches_by_kind(self):
        injector = FaultInjector(
            FaultPlan((FaultRule(op="build", kind="sketched_resistance"),))
        )
        injector.on_build("preprocessing")  # no match, no raise
        with pytest.raises(FaultInjectionError, match="sketched_resistance"):
            injector.on_build("sketched_resistance")

    def test_execute_rule_pinned_to_query_id(self):
        poisoned = solve_query("g", np.zeros(3))
        innocent = solve_query("g", np.zeros(3))
        injector = FaultInjector(
            FaultPlan((FaultRule(op="execute", query_id=poisoned.query_id),))
        )
        injector.on_execute(_batch(innocent))  # half without the poison: clean
        with pytest.raises(FaultInjectionError, match=str(poisoned.query_id)):
            injector.on_execute(_batch(innocent, poisoned))

    def test_execute_rule_matches_by_query_kind(self):
        injector = FaultInjector(FaultPlan((FaultRule(op="execute", kind="resistance"),)))
        injector.on_execute(_batch(solve_query("g", np.zeros(3))))
        with pytest.raises(FaultInjectionError):
            injector.on_execute(_batch(resistance_query("g", 0, 1)))

    def test_repair_rule_pinned_to_step(self):
        injector = FaultInjector(FaultPlan((FaultRule(op="repair", step=2),)))
        injector.on_repair(0)
        injector.on_repair(1)
        with pytest.raises(FaultInjectionError, match="step=2"):
            injector.on_repair(2)

    def test_times_caps_total_firings(self):
        injector = FaultInjector(FaultPlan((FaultRule(op="build", times=2),)))
        for _ in range(2):
            with pytest.raises(FaultInjectionError):
                injector.on_build("grounded")
        injector.on_build("grounded")  # exhausted: no more firings
        assert injector.fire_counts() == (2,)
        assert injector.fired_total == 2

    def test_nan_rule_returns_flag_instead_of_raising(self):
        query = solve_query("g", np.zeros(3))
        other = solve_query("g", np.zeros(3))
        injector = FaultInjector(
            FaultPlan((FaultRule(op="nan", query_id=query.query_id),))
        )
        assert injector.nan_output(query) is True
        assert injector.nan_output(other) is False

    def test_custom_message_used(self):
        injector = FaultInjector(
            FaultPlan((FaultRule(op="build", message="disk on fire"),))
        )
        with pytest.raises(FaultInjectionError, match="disk on fire"):
            injector.on_build("grounded")

    def test_transient_rule_raises_transient_type(self):
        injector = FaultInjector(FaultPlan((FaultRule(op="build", transient=True),)))
        with pytest.raises(TransientFaultError):
            injector.on_build("grounded")
        # TransientFaultError is still a FaultInjectionError
        assert issubclass(TransientFaultError, FaultInjectionError)


class TestDeterminismAndDelay:
    def test_probabilistic_firing_replays_exactly_given_seed(self):
        plan = FaultPlan((FaultRule(op="build", probability=0.5),), seed=99)

        def run(injector):
            pattern = []
            for _ in range(64):
                try:
                    injector.on_build("grounded")
                    pattern.append(False)
                except FaultInjectionError:
                    pattern.append(True)
            return pattern

        first = run(FaultInjector(plan))
        second = run(FaultInjector(plan))
        assert first == second
        assert any(first) and not all(first)  # actually probabilistic

    def test_different_seeds_differ(self):
        def run(seed):
            injector = FaultInjector(
                FaultPlan((FaultRule(op="build", probability=0.5),), seed=seed)
            )
            pattern = []
            for _ in range(64):
                try:
                    injector.on_build("grounded")
                    pattern.append(False)
                except FaultInjectionError:
                    pattern.append(True)
            return pattern

        assert run(1) != run(2)

    def test_delay_only_rule_sleeps_without_failing(self):
        injector = FaultInjector(
            FaultPlan((FaultRule(op="build", fail=False, delay_seconds=0.05),))
        )
        start = time.perf_counter()
        injector.on_build("grounded")  # no raise
        assert time.perf_counter() - start >= 0.04
        assert injector.fired_total == 1


class TestPlanHelpers:
    def test_chaos_plan_covers_every_seam(self):
        plan = FaultPlan.chaos(seed=7)
        ops = {rule.op for rule in plan.rules}
        assert ops == {"build", "execute", "repair", "nan"}
        assert any(rule.transient for rule in plan.rules)

    def test_chaos_plan_optional_latency_rule(self):
        plan = FaultPlan.chaos(seed=7, delay_seconds=0.01)
        assert any(rule.delay_seconds > 0 and not rule.fail for rule in plan.rules)

    def test_plan_rules_coerced_to_tuple(self):
        plan = FaultPlan(rules=[FaultRule(op="build")])
        assert isinstance(plan.rules, tuple)

    def test_disarmed_injector_is_inert(self):
        injector = disarmed_injector()
        assert not injector.armed
        injector.on_build("anything")
        injector.on_repair(0)
        assert injector.nan_output(solve_query("g", np.zeros(2))) is False
        assert injector.fired_total == 0
