"""Failure containment: breaker, retries, bisection, degradation, deadlines."""

import time

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.digraph import FlowNetwork
from repro.serve import (
    ArtifactBreakerOpenError,
    CircuitBreaker,
    DeadlineExceededError,
    DrainRateTracker,
    FaultInjectionError,
    FaultPlan,
    FaultRule,
    HealthStats,
    LaplacianService,
    NumericalHealthError,
    ResiliencePolicy,
    TransientFaultError,
    UnknownGraphError,
    call_with_retries,
    estimate_retry_after,
    gram_query,
    solve_query,
)


@pytest.fixture
def graph():
    return generators.random_weighted_graph(50, average_degree=6, seed=21)


def make_service(**kwargs):
    kwargs.setdefault("t_override", 2)
    kwargs.setdefault("auto_flush", False)
    return LaplacianService(**kwargs)


def small_network():
    net = FlowNetwork(4, source=0, sink=3)
    net.add_edge(0, 1, capacity=2.0, cost=1.0)
    net.add_edge(0, 2, capacity=2.0, cost=2.0)
    net.add_edge(1, 3, capacity=2.0, cost=1.0)
    net.add_edge(2, 3, capacity=2.0, cost=1.0)
    return net


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(threshold=3, ttl_seconds=10.0, clock=FakeClock())
        assert breaker.allow("k")
        assert not breaker.record_failure("k")
        assert not breaker.record_failure("k")
        assert breaker.allow("k")
        assert breaker.record_failure("k")  # third: open
        assert not breaker.allow("k")
        assert breaker.is_open("k")
        assert breaker.open_count == 1

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(threshold=2, ttl_seconds=10.0, clock=FakeClock())
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert breaker.allow("k")  # count restarted: still closed

    def test_ttl_expiry_allows_half_open_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, ttl_seconds=5.0, clock=clock)
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert not breaker.allow("k")
        clock.now = 5.0
        assert breaker.allow("k")  # half-open probe passes
        # a failing probe re-opens immediately (count re-armed at threshold-1)
        assert breaker.record_failure("k")
        assert not breaker.allow("k")

    def test_successful_probe_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, ttl_seconds=5.0, clock=clock)
        breaker.record_failure("k")
        breaker.record_failure("k")
        clock.now = 6.0
        assert breaker.allow("k")
        breaker.record_success("k")
        assert breaker.allow("k")
        assert not breaker.is_open("k")
        assert breaker.open_count == 0

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, ttl_seconds=10.0, clock=FakeClock())
        breaker.record_failure("a")
        assert not breaker.allow("a")
        assert breaker.allow("b")

    def test_key_bound_prunes_oldest(self):
        breaker = CircuitBreaker(threshold=1, ttl_seconds=10.0, clock=FakeClock())
        for i in range(breaker.MAX_KEYS + 10):
            breaker.record_failure(i)
        assert breaker.allow(0)  # oldest key's state was evicted
        assert not breaker.allow(breaker.MAX_KEYS + 9)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            ResiliencePolicy(deadline_seconds=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_jitter"):
            ResiliencePolicy(backoff_jitter=-0.5)
        with pytest.raises(ValueError, match="breaker_threshold"):
            ResiliencePolicy(breaker_threshold=0)

    def test_backoff_grows_and_caps(self):
        policy = ResiliencePolicy(
            backoff_base_seconds=0.1, backoff_max_seconds=0.3, backoff_jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_seconds(a, rng) for a in range(4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_multiplies_within_band(self):
        policy = ResiliencePolicy(
            backoff_base_seconds=0.1, backoff_max_seconds=1.0, backoff_jitter=0.5
        )
        rng = np.random.default_rng(0)
        for _ in range(32):
            delay = policy.backoff_seconds(0, rng)
            assert 0.1 <= delay <= 0.15


class TestCallWithRetries:
    def test_transient_failures_retried_to_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientFaultError("flake")
            return "ok"

        health = HealthStats()
        result = call_with_retries(
            flaky,
            ResiliencePolicy(max_retries=2, backoff_base_seconds=0.0),
            np.random.default_rng(0),
            health=health,
            sleep=lambda s: None,
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert health.retries_total == 2

    def test_retry_budget_exhaustion_raises_last_error(self):
        def always():
            raise TransientFaultError("still down")

        with pytest.raises(TransientFaultError):
            call_with_retries(
                always,
                ResiliencePolicy(max_retries=1, backoff_base_seconds=0.0),
                np.random.default_rng(0),
                sleep=lambda s: None,
            )

    def test_persistent_failures_never_retried(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise FaultInjectionError("hard fail")

        with pytest.raises(FaultInjectionError):
            call_with_retries(
                broken,
                ResiliencePolicy(max_retries=5, backoff_base_seconds=0.0),
                np.random.default_rng(0),
                sleep=lambda s: None,
            )
        assert len(attempts) == 1

    def test_health_counter_validation(self):
        with pytest.raises(ValueError, match="unknown health counter"):
            HealthStats().increment("nope")


class TestBatchBisection:
    def test_single_poisoned_query_in_coalesced_batch(self, graph, rng):
        """ISSUE acceptance: 16 coalesced queries, 1 injected fault -> exactly
        1 ticket fails with the injected error, 15 resolve matching the
        fault-free answers to 1e-8."""
        reference = make_service()
        ref_key = reference.register(graph)
        rhs = [rng.normal(size=graph.n) for _ in range(16)]
        expected = [reference.solve(ref_key, b) for b in rhs]

        service = make_service()
        key = service.register(graph)
        queries = [solve_query(key, b) for b in rhs]
        poisoned = queries[5]
        service.arm_faults(
            FaultPlan((FaultRule(op="execute", query_id=poisoned.query_id),))
        )
        tickets = [service.submit(q) for q in queries]
        service.flush()

        failures = 0
        for query, ticket, want in zip(queries, tickets, expected):
            assert ticket.done()
            if query is poisoned:
                with pytest.raises(FaultInjectionError, match=str(query.query_id)):
                    ticket.result()
                failures += 1
            else:
                got = ticket.result().value
                np.testing.assert_allclose(
                    got.solution, want.solution, atol=1e-8, rtol=1e-8
                )
        assert failures == 1
        snapshot = service.metrics_snapshot()
        assert snapshot["failures_total"] == 1
        assert snapshot["failures_by_kind"] == {"solve": 1}
        assert snapshot["queries_total"] == 15

    def test_every_query_failing_fails_every_ticket(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        service.arm_faults(FaultPlan((FaultRule(op="execute", kind="solve"),)))
        tickets = [
            service.submit(solve_query(key, rng.normal(size=graph.n)))
            for _ in range(4)
        ]
        service.flush()
        for ticket in tickets:
            with pytest.raises(FaultInjectionError):
                ticket.result()
        assert service.metrics_snapshot()["failures_total"] == 4

    def test_transient_execute_fault_retried_invisibly(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        service.arm_faults(
            FaultPlan(
                (FaultRule(op="execute", transient=True, times=1),),
            )
        )
        report = service.solve(key, rng.normal(size=graph.n))
        assert np.all(np.isfinite(report.solution))
        snapshot = service.metrics_snapshot()
        assert snapshot["retries_total"] == 1
        assert snapshot["failures_total"] == 0


class TestDegradationLadder:
    def test_breaker_trips_then_grounded_serves_exactly(self, graph):
        """ISSUE acceptance: a tripped breaker on sketch builds serves
        resistance queries exactly via the grounded path with degraded=True,
        attempting no further sketch build."""
        pairs = [(i, (i + 7) % graph.n) for i in range(20)]
        reference = make_service()
        ref_key = reference.register(graph)
        reference.planner.oracle_limit = 10  # force the large-graph path
        expected = reference.effective_resistances(ref_key, pairs, eta=0.5)

        service = make_service(
            resilience=ResiliencePolicy(breaker_threshold=2, breaker_ttl_seconds=60.0)
        )
        key = service.register(graph)
        service.planner.oracle_limit = 10
        injector = service.arm_faults(
            FaultPlan((FaultRule(op="build", kind="sketched_resistance"),))
        )

        # two failing builds trip the breaker; both batches degrade but serve
        for _ in range(2):
            values = service.effective_resistances(key, pairs, eta=0.5)
            np.testing.assert_allclose(values, expected, atol=1e-8, rtol=1e-8)
        assert injector.fire_counts() == (2,)
        assert service.planner.breaker.is_open(
            (service.registry.get(key).fingerprint, "sketched_resistance", (0.5, 0))
        )

        # breaker open: the build is short-circuited, not attempted
        values = service.effective_resistances(key, pairs, eta=0.5)
        np.testing.assert_allclose(values, expected, atol=1e-8, rtol=1e-8)
        assert injector.fire_counts() == (2,)  # no third build attempt
        snapshot = service.metrics_snapshot()
        assert snapshot["breaker_open_total"] >= 1
        assert snapshot["degraded_total"] >= 3
        assert snapshot["failures_total"] == 0

    def test_degraded_flag_on_result(self, graph):
        from repro.serve import resistance_batch_query

        service = make_service()
        key = service.register(graph)
        service.planner.oracle_limit = 10
        service.arm_faults(
            FaultPlan((FaultRule(op="build", kind="sketched_resistance"),))
        )
        ticket = service.submit(
            resistance_batch_query(key, [(0, 1), (2, 3)] * 10, eta=0.5)
        )
        service.flush()
        result = ticket.result()
        assert result.degraded is True
        assert np.all(np.isfinite(result.value))

    def test_dense_oracle_failure_degrades_to_grounded(self, graph):
        service = make_service()
        key = service.register(graph)
        service.arm_faults(
            FaultPlan((FaultRule(op="build", kind="resistance_oracle"),))
        )
        value = service.effective_resistance(key, 0, 1)
        assert np.isfinite(value)
        assert service.metrics_snapshot()["degraded_total"] == 1

    def test_failed_repair_walk_falls_back_to_rebuild(self, rng):
        graph = generators.random_weighted_graph(40, average_degree=6, seed=3)
        service = make_service()
        key = service.register(graph)
        b = rng.normal(size=graph.n)
        service.solve(key, b)
        u, v = 0, graph.n - 1
        while graph.has_edge(u, v):
            v -= 1
        graph.add_edge(u, v, 1.0)
        service.arm_faults(FaultPlan((FaultRule(op="repair", step=0),)))
        report = service.solve(key, b)
        assert np.all(np.isfinite(report.solution))
        assert service.metrics_snapshot()["degraded_total"] >= 1
        # the degraded path still answers against the *current* content
        from repro.solvers.laplacian import BCCLaplacianSolver

        reference = BCCLaplacianSolver(graph, seed=0, t_override=2)
        np.testing.assert_allclose(
            report.solution, reference.exact_solution(b), atol=1e-5
        )

    def test_solver_preprocessing_build_failure_reaches_client(self, graph, rng):
        # preprocessing has no cheaper substitute: the error is contained to
        # the ticket, not swallowed
        service = make_service()
        key = service.register(graph)
        service.arm_faults(
            FaultPlan((FaultRule(op="build", kind="preprocessing"),))
        )
        ticket = service.submit(solve_query(key, rng.normal(size=graph.n)))
        service.flush()
        with pytest.raises(FaultInjectionError):
            ticket.result()


class TestNumericalHealth:
    def test_nan_solve_output_refused_with_typed_error(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        query = solve_query(key, rng.normal(size=graph.n))
        service.arm_faults(
            FaultPlan((FaultRule(op="nan", query_id=query.query_id),))
        )
        ticket = service.submit(query)
        service.flush()
        with pytest.raises(NumericalHealthError):
            ticket.result()

    def test_nan_poison_contained_to_its_query(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        rhs = [rng.normal(size=graph.n) for _ in range(8)]
        queries = [solve_query(key, b) for b in rhs]
        service.arm_faults(
            FaultPlan((FaultRule(op="nan", query_id=queries[3].query_id),))
        )
        tickets = [service.submit(q) for q in queries]
        service.flush()
        for index, ticket in enumerate(tickets):
            if index == 3:
                with pytest.raises(NumericalHealthError):
                    ticket.result()
            else:
                assert np.all(np.isfinite(ticket.result().value.solution))

    def test_nan_gram_output_refused(self, rng):
        service = make_service()
        key = service.register(small_network())
        net = small_network()
        d = np.ones(net.m)
        rhs = rng.normal(size=net.n - 1)
        query = gram_query(key, d, rhs)
        service.arm_faults(
            FaultPlan((FaultRule(op="nan", query_id=query.query_id),))
        )
        ticket = service.submit(query)
        service.flush()
        with pytest.raises(NumericalHealthError):
            ticket.result()


class TestDeadlines:
    def test_expired_query_fails_fast_before_execution(self, graph, rng):
        service = make_service(
            resilience=ResiliencePolicy(deadline_seconds=0.01)
        )
        key = service.register(graph)
        ticket = service.submit(solve_query(key, rng.normal(size=graph.n)))
        time.sleep(0.05)
        service.flush()
        with pytest.raises(DeadlineExceededError):
            ticket.result()
        snapshot = service.metrics_snapshot()
        assert snapshot["deadline_misses"] == 1
        assert snapshot["failures_total"] == 1

    def test_late_result_still_resolves_and_counts_miss(self, graph, rng):
        service = make_service(
            resilience=ResiliencePolicy(deadline_seconds=0.05),
            faults=FaultPlan(
                (FaultRule(op="execute", fail=False, delay_seconds=0.1),)
            ),
        )
        key = service.register(graph)
        report = service.solve(key, rng.normal(size=graph.n))
        assert np.all(np.isfinite(report.solution))
        snapshot = service.metrics_snapshot()
        assert snapshot["deadline_misses"] == 1
        assert snapshot["failures_total"] == 0

    def test_no_deadline_means_no_misses(self, graph, rng):
        service = make_service(
            faults=FaultPlan(
                (FaultRule(op="execute", fail=False, delay_seconds=0.02),)
            )
        )
        key = service.register(graph)
        service.solve(key, rng.normal(size=graph.n))
        assert service.metrics_snapshot()["deadline_misses"] == 0


class TestSubmitTimeRejection:
    def test_unknown_graph_typed_error(self):
        service = make_service()
        with pytest.raises(UnknownGraphError):
            service.solve("never-registered", np.zeros(3))
        # KeyError subclass: historical handlers keep working
        with pytest.raises(KeyError):
            service.effective_resistance("never-registered", 0, 1)

    def test_nan_rhs_rejected_at_submit(self, graph):
        service = make_service()
        key = service.register(graph)
        b = np.zeros(graph.n)
        b[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            service.submit(solve_query(key, b))

    def test_inf_rhs_rejected_at_submit(self, graph):
        service = make_service()
        key = service.register(graph)
        b = np.zeros(graph.n)
        b[0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            service.solve(key, b)

    def test_nan_gram_diagonal_rejected(self, rng):
        service = make_service()
        net = small_network()
        key = service.register(net)
        d = np.ones(net.m)
        d[1] = np.nan  # passes `d <= 0` (NaN compares false) -- must not pass here
        with pytest.raises(ValueError, match="non-finite"):
            service.submit(gram_query(key, d, rng.normal(size=net.n - 1)))

    def test_nan_gram_rhs_rejected(self):
        service = make_service()
        net = small_network()
        key = service.register(net)
        rhs = np.zeros(net.n - 1)
        rhs[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            service.submit(gram_query(key, np.ones(net.m), rhs))

    def test_rejected_query_never_reaches_the_queue(self, graph):
        service = make_service()
        key = service.register(graph)
        b = np.full(graph.n, np.nan)
        with pytest.raises(ValueError):
            service.submit(solve_query(key, b))
        assert service.flush() == 0


class TestFailureMetrics:
    def test_failed_queries_enter_latency_window(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        query = solve_query(key, rng.normal(size=graph.n))
        service.arm_faults(
            FaultPlan((FaultRule(op="execute", query_id=query.query_id),))
        )
        ticket = service.submit(query)
        service.flush()
        with pytest.raises(FaultInjectionError):
            ticket.result()
        assert service.metrics.failures_total == 1
        assert service.metrics.failures_by_kind == {"solve": 1}
        # the failure's latency sample landed in the percentile window
        assert service.metrics.latency_percentiles()["p99"] > 0.0

    def test_snapshot_exposes_resilience_ledger(self, graph):
        service = make_service()
        service.register(graph)
        snapshot = service.metrics_snapshot()
        for key in (
            "failures_total",
            "failures_by_kind",
            "retries_total",
            "breaker_open_total",
            "degraded_total",
            "deadline_misses",
        ):
            assert key in snapshot

    def test_arm_faults_rejects_garbage(self, graph):
        service = make_service()
        with pytest.raises(TypeError, match="arm_faults"):
            service.arm_faults("not a plan")

    def test_arm_faults_none_disarms(self, graph, rng):
        service = make_service()
        key = service.register(graph)
        service.arm_faults(FaultPlan((FaultRule(op="execute"),)))
        service.arm_faults(None)
        report = service.solve(key, rng.normal(size=graph.n))
        assert np.all(np.isfinite(report.solution))


class TestRetryAfterEstimation:
    def test_tracker_needs_two_observations_for_a_rate(self):
        tracker = DrainRateTracker()
        assert tracker.rate(now=10.0) is None
        tracker.observe(count=4, now=10.0)
        assert tracker.rate(now=10.0) is None  # single point: no span yet
        tracker.observe(count=4, now=12.0)
        # 4 drains (the second batch) over a 2 second span
        assert tracker.rate(now=12.0) == pytest.approx(2.0)

    def test_tracker_window_slides(self):
        tracker = DrainRateTracker(window=4)
        for i in range(10):
            tracker.observe(count=1, now=float(i))
        # only the last 4 observations (t=6..9) remain: 3 drains over 3s
        assert tracker.rate(now=9.0) == pytest.approx(1.0)

    def test_estimate_falls_back_without_a_rate(self):
        assert estimate_retry_after(5, None) == pytest.approx(0.05)
        assert estimate_retry_after(5, 0.0) == pytest.approx(0.05)
        assert estimate_retry_after(5, -1.0) == pytest.approx(0.05)

    def test_estimate_tracks_depth_over_drain_rate_with_clamps(self):
        assert estimate_retry_after(10, 100.0) == pytest.approx(0.1)
        assert estimate_retry_after(1, 1e6) == pytest.approx(0.001)  # floor
        assert estimate_retry_after(1000, 0.1) == pytest.approx(5.0)  # ceiling
