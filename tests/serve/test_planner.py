"""QueryPlanner: coalescing plans and blocked execution correctness."""

import numpy as np
import pytest

from repro.core import api
from repro.graphs import generators
from repro.serve.artifacts import ArtifactCache
from repro.serve.planner import (
    QueryPlanner,
    certify_query,
    resistance_batch_query,
    resistance_query,
    solve_query,
)
from repro.serve.registry import GraphRegistry
from repro.solvers.laplacian import BCCLaplacianSolver


@pytest.fixture
def graph():
    return generators.random_weighted_graph(60, average_degree=6, seed=9)


@pytest.fixture
def setup(graph):
    registry = GraphRegistry()
    cache = ArtifactCache()
    planner = QueryPlanner(registry, cache, solver_seed=0, t_override=2)
    key = registry.register(graph, name="g")
    return planner, key


class TestPlanning:
    def test_groups_by_graph_kind_and_eps(self, setup):
        planner, key = setup
        b = np.zeros(60)
        queries = [
            solve_query(key, b, eps=1e-6),
            resistance_query(key, 0, 1),
            solve_query(key, b, eps=1e-6),
            solve_query(key, b, eps=1e-8),
            certify_query(key),
            resistance_query(key, 2, 3),
        ]
        batches = planner.plan(queries)
        shapes = [(batch.kind, batch.size) for batch in batches]
        assert ("solve", 2) in shapes  # the two eps=1e-6 solves coalesced
        assert ("solve", 1) in shapes  # the eps=1e-8 solve stands alone
        assert ("resistance", 2) in shapes
        assert ("certify", 1) in shapes

    def test_preserves_submission_order_within_batch(self, setup):
        planner, key = setup
        queries = [resistance_query(key, 0, i) for i in range(1, 6)]
        (batch,) = planner.plan(queries)
        assert [q.query_id for q in batch.queries] == [q.query_id for q in queries]

    def test_different_graphs_never_coalesce(self, setup, graph):
        planner, key = setup
        other_key = planner.registry.register(
            generators.random_weighted_graph(30, seed=4), name="h"
        )
        batches = planner.plan(
            [resistance_query(key, 0, 1), resistance_query(other_key, 0, 1)]
        )
        assert len(batches) == 2

    def test_rejects_unknown_kind(self, setup):
        from repro.serve.planner import Query

        with pytest.raises(ValueError):
            Query("frobnicate", "g", {})


class TestExecution:
    def test_solve_batch_matches_direct_solver(self, setup, graph, rng):
        planner, key = setup
        rhs = [rng.normal(size=graph.n) for _ in range(3)]
        queries = [solve_query(key, b, eps=1e-8) for b in rhs]
        results = planner.execute(planner.plan(queries))
        reference = BCCLaplacianSolver(graph, seed=0, t_override=2)
        for result, b in zip(results, rhs):
            np.testing.assert_allclose(
                result.value.solution, reference.exact_solution(b), atol=1e-6
            )
            assert result.batch_size == 3

    def test_resistance_batch_matches_dense_reference(self, setup, graph, rng):
        planner, key = setup
        pairs = [(int(u), int(v)) for u, v in rng.integers(0, graph.n, (20, 2))]
        queries = [resistance_query(key, u, v) for u, v in pairs]
        results = planner.execute(planner.plan(queries))
        reference = api.effective_resistances(graph, pairs=pairs, backend="dense")
        np.testing.assert_allclose(
            [r.value for r in results], reference, rtol=1e-7, atol=1e-9
        )

    def test_bulk_and_scalar_resistance_queries_coalesce(self, setup, graph):
        planner, key = setup
        bulk = resistance_batch_query(key, [(0, 1), (2, 3)])
        scalar = resistance_query(key, 4, 5)
        (batch,) = planner.plan([bulk, scalar])
        results = planner.execute_batch(batch)
        assert isinstance(results[0].value, np.ndarray) and results[0].value.shape == (2,)
        assert isinstance(results[1].value, float)
        reference = api.effective_resistances(
            graph, pairs=[(0, 1), (2, 3), (4, 5)], backend="dense"
        )
        np.testing.assert_allclose(
            np.append(results[0].value, results[1].value), reference, rtol=1e-7
        )

    def test_oracle_and_grounded_paths_agree(self, graph, rng):
        registry = GraphRegistry()
        pairs = [(int(u), int(v)) for u, v in rng.integers(0, graph.n, (16, 2))]
        values = []
        for oracle_limit in (0, graph.n):  # force grounded vs oracle path
            planner = QueryPlanner(
                registry, ArtifactCache(), t_override=2, oracle_limit=oracle_limit
            )
            key = registry.register(graph)
            results = planner.execute(
                planner.plan([resistance_query(key, u, v) for u, v in pairs])
            )
            values.append([r.value for r in results])
        np.testing.assert_allclose(values[0], values[1], rtol=1e-8, atol=1e-10)

    def test_certify_coalesces_to_one_artifact(self, setup, graph):
        planner, key = setup
        queries = [certify_query(key, eps=0.5) for _ in range(3)]
        results = planner.execute(planner.plan(queries))
        assert len(results) == 3
        assert all(r.value is results[0].value for r in results)
        report = results[0].value
        slack = 1e-7
        assert report.ok == (
            report.lo >= 0.5 - slack and report.hi <= 1.5 + slack
        )
        # second round hits the cached sparsifier
        again = planner.execute(planner.plan([certify_query(key, eps=0.5)]))
        assert again[0].cache_hit

    def test_certify_accepts_a_valid_sparsifier(self, setup, graph):
        planner, key = setup
        # a huge bundle makes the sparsifier the whole graph: trivially valid
        planner.t_override = 10
        report = planner.execute(planner.plan([certify_query(key, eps=0.5)]))[0].value
        assert report.ok
        assert report.lo == pytest.approx(1.0) and report.hi == pytest.approx(1.0)

    def test_solver_artifact_reused_across_batches(self, setup, graph, rng):
        planner, key = setup
        b = rng.normal(size=graph.n)
        first = planner.execute(planner.plan([solve_query(key, b)]))
        second = planner.execute(planner.plan([solve_query(key, b)]))
        assert not first[0].cache_hit
        assert second[0].cache_hit
