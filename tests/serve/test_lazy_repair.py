"""Laziness properties of the pending-delta repair ledger.

The tentpole contract: mutating a registered graph does *zero* repair or
build work up front.  The planner stashes the delta in the cache's pending
ledger and every stale artifact pays its repair on its own first lookup --
or never, if it is never looked up again.  Fault-injector fire counters
(``op="repair"`` / ``op="build"`` rules with ``fail=False`` count without
failing) and the cache's counters are the observables.
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import ArtifactCache, LaplacianService
from repro.serve.artifacts import PENDING_SOURCE_LIMIT, PENDING_TARGET_LIMIT
from repro.serve.faults import FaultPlan, FaultRule

T_OVERRIDE = 2
PAIRS = [(0, 5), (1, 9), (10, 250), (7, 120)]


def make_service(**kwargs):
    kwargs.setdefault("t_override", T_OVERRIDE)
    kwargs.setdefault("auto_flush", False)
    return LaplacianService(**kwargs)


@pytest.fixture
def graph():
    return generators.random_weighted_graph(300, average_degree=8, seed=7)


class TestZeroWorkUntilLookup:
    def test_mutation_does_no_repair_or_build_work(self, graph):
        service = make_service()
        key = service.register(graph)
        b = np.random.default_rng(0).normal(size=graph.n)
        service.solve(key, b)
        service.effective_resistances(key, PAIRS)
        injector = service.arm_faults(
            FaultPlan(
                rules=(
                    FaultRule(op="repair", fail=False),  # counts walk records
                    FaultRule(op="build", fail=False),  # counts builder runs
                )
            )
        )
        repairs_before = service.cache.stats.repairs

        graph.add_edge(2, 290, 1.7)
        # the mutation alone does nothing: no walk, no build, no stats
        assert injector.fired_total == 0
        assert service.cache.stats.repairs == repairs_before

        # the first query repairs exactly the artifact it looks up -- the
        # solve path walks the 1-record delta over the preprocessing (one
        # repair-seam firing) and runs no builder at all
        service.solve(key, b)
        assert injector.fire_counts() == (1, 0)
        assert service.cache.stats.repairs == repairs_before + 1

        # the dense resistance oracle is still stale and still pending
        entry = service.registry.get(key)
        pending = service.cache.pending_repair(entry.fingerprint, entry.version)
        assert pending is not None

        # ...until its own first lookup pays its repair
        service.effective_resistances(key, PAIRS)
        assert injector.fire_counts() == (2, 0)
        assert service.cache.stats.repairs == repairs_before + 2

    def test_never_queried_artifact_never_pays_repair(self, graph):
        service = make_service()
        key = service.register(graph)
        service.effective_resistances(key, PAIRS)  # dense oracle + grounded
        injector = service.arm_faults(
            FaultPlan(rules=(FaultRule(op="repair", fail=False),))
        )
        graph.add_edge(2, 290, 1.7)
        service.effective_resistances(key, PAIRS)
        # one walk record for the dense oracle; the grounded solver cached
        # inside the same generation was never looked up, so its repair was
        # skipped entirely -- not deferred-and-paid, skipped
        assert injector.fired_total == 1
        entry = service.registry.get(key)
        grounded = [e for e in service.cache.entries() if e.kind == "grounded"]
        assert grounded and all(
            e.graph_key != entry.fingerprint for e in grounded
        )


class TestEvictionWhilePending:
    def test_evicted_artifact_drops_its_delta_cleanly(self, graph):
        # a one-entry cache: by the time the mutation lands, the artifact the
        # next query wants has already been LRU-evicted.  The pending ledger
        # must resolve to an ordinary rebuild -- no error, no repair, and the
        # swept ledger reports nothing pending once its sources are gone.
        service = make_service(cache=ArtifactCache(max_entries=1))
        key = service.register(graph)
        b = np.random.default_rng(0).normal(size=graph.n)
        service.solve(key, b)  # preprocessing built...
        service.effective_resistances(key, PAIRS)  # ...then evicted
        repairs_before = service.cache.stats.repairs

        graph.add_edge(2, 290, 1.7)
        report = service.solve(key, b, eps=1e-8)
        assert np.all(np.isfinite(report.solution))
        assert service.cache.stats.repairs == repairs_before  # rebuilt, clean

    def test_pending_source_swept_when_artifacts_vanish(self):
        cache = ArtifactCache()
        cache.get_or_build("fpA", 1, "grounded", (), lambda: np.zeros(8))
        assert cache.defer_repair("fpA", 1, "fpB", 2, ("r1",), limit=4)
        assert cache.pending_repair("fpB", 2) == {("fpA", 1): ("r1",)}
        # the only artifact of the source generation disappears (eviction,
        # discard, ...): the ledger sweeps the source and reports nothing
        assert cache.discard("fpA", 1, "grounded", ())
        assert cache.pending_repair("fpB", 2) is None
        # and the sweep is sticky -- the target itself was pruned
        assert cache.pending_repair("fpB", 2) is None


class TestLedgerBookkeeping:
    def test_chained_deltas_coalesce_across_generations(self):
        cache = ArtifactCache()
        cache.get_or_build("fpA", 1, "grounded", (), lambda: np.zeros(8))
        cache.get_or_build("fpB", 2, "preprocessing", (), lambda: np.zeros(8))
        assert cache.defer_repair("fpA", 1, "fpB", 2, ("r1",), limit=4)
        assert cache.defer_repair("fpB", 2, "fpC", 3, ("r2", "r3"), limit=4)
        pending = cache.pending_repair("fpC", 3)
        # the closest generation comes first (shortest delta); the older one
        # carries the concatenated records
        assert list(pending.items()) == [
            (("fpB", 2), ("r2", "r3")),
            (("fpA", 1), ("r1", "r2", "r3")),
        ]
        # the intermediate target was consumed by the chaining
        assert cache.pending_repair("fpB", 2) is None

    def test_chain_exceeding_limit_drops_the_far_generation(self):
        cache = ArtifactCache()
        cache.get_or_build("fpA", 1, "grounded", (), lambda: np.zeros(8))
        cache.get_or_build("fpB", 2, "grounded", (), lambda: np.zeros(8))
        assert cache.defer_repair("fpA", 1, "fpB", 2, ("r1", "r2"), limit=3)
        invalidations_before = cache.stats.invalidations
        # fpA's combined delta would be 4 records > limit: dropped, and its
        # lingering artifact invalidated; fpB stays repairable
        assert cache.defer_repair("fpB", 2, "fpC", 3, ("r3", "r4"), limit=3)
        assert cache.pending_repair("fpC", 3) == {("fpB", 2): ("r3", "r4")}
        assert cache.stats.invalidations == invalidations_before + 1
        assert not cache.contains("fpA", 1, "grounded", ())

    def test_source_cap_keeps_the_closest_generations(self):
        cache = ArtifactCache()
        for version in range(1, PENDING_SOURCE_LIMIT + 3):
            cache.get_or_build(
                f"fp{version}", version, "grounded", (), lambda: np.zeros(8)
            )
            if version > 1:
                assert cache.defer_repair(
                    f"fp{version - 1}",
                    version - 1,
                    f"fp{version}",
                    version,
                    (f"r{version}",),
                    limit=64,
                )
        top = PENDING_SOURCE_LIMIT + 2
        pending = cache.pending_repair(f"fp{top}", top)
        assert len(pending) == PENDING_SOURCE_LIMIT
        # the kept sources are the most recent generations, shortest first
        assert next(iter(pending)) == (f"fp{top - 1}", top - 1)

    def test_target_cap_evicts_oldest_target(self):
        cache = ArtifactCache()
        for i in range(PENDING_TARGET_LIMIT + 1):
            cache.get_or_build(f"src{i}", 1, "grounded", (), lambda: np.zeros(8))
            assert cache.defer_repair(f"src{i}", 1, f"dst{i}", 2, ("r",), limit=4)
        assert cache.pending_repair("dst0", 2) is None  # evicted, swept
        assert cache.pending_repair(f"dst{PENDING_TARGET_LIMIT}", 2) is not None

    def test_invalidate_graph_prunes_ledger(self):
        cache = ArtifactCache()
        cache.get_or_build("fpA", 1, "grounded", (), lambda: np.zeros(8))
        assert cache.defer_repair("fpA", 1, "fpB", 2, ("r1",), limit=4)
        cache.invalidate_graph("fpA")
        assert cache.pending_repair("fpB", 2) is None

    def test_clear_empties_ledger(self):
        cache = ArtifactCache()
        cache.get_or_build("fpA", 1, "grounded", (), lambda: np.zeros(8))
        assert cache.defer_repair("fpA", 1, "fpB", 2, ("r1",), limit=4)
        cache.clear()
        assert cache.pending_repair("fpB", 2) is None
