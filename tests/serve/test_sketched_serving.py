"""Approximate-resistance serving: eps-aware routing, amortisation, admission.

Covers the ISSUE 4 serving contract: exact and approximate resistance queries
never coalesce, graphs above the oracle gate serve ``eta``-bounded queries
from the JL-sketched oracle once its build has amortised (splu fallback until
then, exact dense oracle below the gate regardless of ``eta``), the sketched
answers honour the accuracy bound against the exact path, and the bounded
submission queue sheds load with :class:`ServiceOverloadedError`.
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    ArtifactCache,
    FlushPolicy,
    LaplacianService,
    ServiceOverloadedError,
    resistance_batch_query,
    resistance_query,
)
from repro.serve.planner import SKETCH_EAGER_BATCH, QueryPlanner
from repro.serve.registry import GraphRegistry


@pytest.fixture
def graph():
    return generators.random_weighted_graph(400, average_degree=8, seed=17)


def make_service(oracle_limit=None, **kwargs):
    kwargs.setdefault("t_override", 2)
    kwargs.setdefault("auto_flush", False)
    service = LaplacianService(**kwargs)
    if oracle_limit is not None:
        service.planner.oracle_limit = oracle_limit
    return service


def sketched_params(service):
    return (0.5, service.planner.solver_seed)


def pairs_of(graph, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (int(u), int(v))
        for u, v in zip(rng.integers(0, graph.n, count), rng.integers(0, graph.n, count))
    ]


class TestCoalescingSeparation:
    def test_exact_and_approx_never_share_a_batch(self, graph):
        service = make_service()
        key = service.register(graph)
        queries = [
            resistance_query(key, 0, 1),
            resistance_query(key, 0, 1, eta=0.5),
            resistance_query(key, 2, 3),
            resistance_query(key, 2, 3, eta=0.25),
            resistance_query(key, 4, 5, eta=0.5),
        ]
        batches = service.planner.plan(queries)
        shapes = sorted((batch.kind, batch.size) for batch in batches)
        assert shapes == [("resistance", 1), ("resistance", 2), ("resistance", 2)]
        etas = {batch.coalesce_params[0] for batch in batches}
        assert etas == {None, 0.5, 0.25}

    def test_eta_validated_at_submit_time(self, graph):
        service = make_service()
        key = service.register(graph)
        for bad_eta in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                service.effective_resistance(key, 0, 1, eta=bad_eta)
            with pytest.raises(ValueError):
                service.effective_resistances(key, [(0, 1)], eta=bad_eta)
        # nothing enqueued by the rejected submissions
        assert service.flush() == 0


class TestRouting:
    def test_below_gate_eta_served_by_exact_dense_oracle(self, graph):
        service = make_service()  # default gate far above n=400
        key = service.register(graph)
        exact = service.effective_resistances(key, pairs_of(graph, 32))
        approx = service.effective_resistances(key, pairs_of(graph, 32), eta=0.5)
        np.testing.assert_array_equal(exact, approx)  # same oracle, exact values
        kinds = {entry.kind for entry in service.cache.entries()}
        assert "sketched_resistance" not in kinds

    def test_above_gate_bulk_eta_builds_sketch(self, graph):
        service = make_service(oracle_limit=100)
        key = service.register(graph)
        fingerprint = service.registry.get(key).fingerprint
        service.effective_resistances(
            key, pairs_of(graph, SKETCH_EAGER_BATCH), eta=0.5
        )
        assert service.cache.contains(
            fingerprint, graph.version, "sketched_resistance", sketched_params(service)
        )

    def test_above_gate_scalar_eta_falls_back_to_splu(self, graph):
        service = make_service(oracle_limit=100)
        key = service.register(graph)
        fingerprint = service.registry.get(key).fingerprint
        service.effective_resistance(key, 0, 1, eta=0.5)
        kinds = {entry.kind for entry in service.cache.entries()}
        assert kinds == {"grounded"}  # exact fallback, no premature sketch build
        assert not service.cache.contains(
            fingerprint, graph.version, "sketched_resistance", sketched_params(service)
        )

    def test_scalar_demand_eventually_amortises_into_sketch(self):
        graph = generators.random_weighted_graph(150, average_degree=6, seed=23)
        service = make_service(oracle_limit=100)
        key = service.register(graph)
        fingerprint = service.registry.get(key).fingerprint
        # tiny k so a handful of scalar queries crosses k / SKETCH_DEMAND_FACTOR
        built_at = None
        for i in range(1000):
            service.effective_resistance(key, 0, 1, eta=0.9)
            if service.cache.contains(
                fingerprint, graph.version, "sketched_resistance",
                (0.9, service.planner.solver_seed),
            ):
                built_at = i
                break
        assert built_at is not None, "cumulative scalar demand never built the sketch"
        assert built_at > 0, "a single scalar query must not pay the build"

    def test_oversized_sketch_never_built_under_tight_budget(self, graph):
        # an embedding that cannot stay resident would be evicted on the next
        # insert and rebuilt every batch; the planner must keep the fallback
        service = make_service(
            oracle_limit=100, cache=ArtifactCache(max_bytes=64 * 1024)
        )
        key = service.register(graph)
        fingerprint = service.registry.get(key).fingerprint
        pairs = pairs_of(graph, 64)
        exact = service.effective_resistances(key, pairs)
        approx = service.effective_resistances(key, pairs, eta=0.5)
        np.testing.assert_array_equal(exact, approx)  # grounded fallback, exact
        assert not service.cache.contains(
            fingerprint, graph.version, "sketched_resistance", sketched_params(service)
        )

    def test_exact_queries_above_gate_still_use_splu(self, graph):
        service = make_service(oracle_limit=100)
        key = service.register(graph)
        service.effective_resistances(key, pairs_of(graph, 32))
        kinds = {entry.kind for entry in service.cache.entries()}
        assert kinds == {"grounded"}

    def test_sketched_answers_within_eta_of_exact(self, graph):
        service = make_service(oracle_limit=100)
        key = service.register(graph)
        pairs = pairs_of(graph, 64)
        exact = service.effective_resistances(key, pairs)
        approx = service.effective_resistances(key, pairs, eta=0.5)
        mask = np.isfinite(exact) & (exact > 0)
        relative = np.abs(approx[mask] - exact[mask]) / exact[mask]
        assert float(relative.max()) <= 0.5
        ties = np.asarray([u == v for u, v in pairs])
        np.testing.assert_array_equal(approx[ties], 0.0)

    def test_mutation_invalidates_sketch(self, graph):
        service = make_service(oracle_limit=100)
        key = service.register(graph)
        pairs = pairs_of(graph, 32)
        service.effective_resistances(key, pairs, eta=0.5)
        graph.add_edge(0, graph.n - 1, 3.5)
        fresh = service.effective_resistances(key, pairs, eta=0.5)
        entry = service.registry.get(key)
        assert entry.is_current()
        # every cached artifact refers to the current version only
        assert all(e.version == graph.version for e in service.cache.entries())
        exact = service.effective_resistances(key, pairs)
        mask = np.isfinite(exact) & (exact > 0)
        relative = np.abs(fresh[mask] - exact[mask]) / exact[mask]
        assert float(relative.max()) <= 0.5


class TestPlannerDirect:
    def test_demand_counter_pruned_on_revalidation(self):
        graph = generators.random_weighted_graph(150, average_degree=6, seed=29)
        registry = GraphRegistry()
        cache = ArtifactCache()
        planner = QueryPlanner(registry, cache, solver_seed=0, t_override=2, oracle_limit=100)
        key = registry.register(graph, name="g")
        planner.execute(planner.plan([resistance_query(key, 0, 1, eta=0.5)]))
        assert planner._sketch_demand
        graph.add_edge(0, 149, 2.0)
        planner.execute(planner.plan([resistance_query(key, 0, 1, eta=0.5)]))
        # the old fingerprint's counters are gone; at most the new one remains
        fingerprints = {k[0] for k in planner._sketch_demand}
        assert fingerprints <= {registry.get(key).fingerprint}


class TestAdmissionControl:
    def test_max_pending_sheds_load_with_typed_error(self, graph):
        service = make_service(flush_policy=FlushPolicy(max_pending=3))
        key = service.register(graph)
        tickets = [service.submit(resistance_query(key, i, i + 1)) for i in range(3)]
        with pytest.raises(ServiceOverloadedError):
            service.submit(resistance_query(key, 5, 6))
        assert service.metrics_snapshot()["rejected_total"] == 1
        service.flush()
        for ticket in tickets:
            assert np.isfinite(ticket.result().value)
        # queue drained: submissions are admitted again
        assert np.isfinite(service.effective_resistance(key, 7, 8))

    def test_shed_carries_retry_after_hint(self, graph):
        service = make_service(flush_policy=FlushPolicy(max_pending=2))
        key = service.register(graph)
        service.submit(resistance_query(key, 0, 1))
        service.submit(resistance_query(key, 1, 2))
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit(resistance_query(key, 2, 3))
        # no drain observed yet: the hint is the conservative default, but
        # it is always present and positive on an admission-control shed
        assert excinfo.value.retry_after_seconds is not None
        assert excinfo.value.retry_after_seconds > 0
        service.flush()
        service.submit(resistance_query(key, 3, 4))
        service.submit(resistance_query(key, 4, 5))
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit(resistance_query(key, 5, 6))
        assert excinfo.value.retry_after_seconds > 0
        service.flush()

    def test_rejected_count_accumulates(self, graph):
        service = make_service(flush_policy=FlushPolicy(max_pending=1))
        key = service.register(graph)
        service.submit(resistance_query(key, 0, 1))
        for _ in range(4):
            with pytest.raises(ServiceOverloadedError):
                service.submit(resistance_query(key, 1, 2))
        snapshot = service.metrics_snapshot()
        assert snapshot["rejected_total"] == 4
        assert snapshot["queries_total"] == 0  # nothing executed yet
        service.flush()

    def test_default_policy_remains_unbounded(self, graph):
        service = make_service()
        key = service.register(graph)
        tickets = [service.submit(resistance_query(key, 0, 1)) for _ in range(200)]
        service.flush()
        assert all(ticket.done() for ticket in tickets)
        assert service.metrics_snapshot()["rejected_total"] == 0

    def test_max_pending_validation(self):
        with pytest.raises(ValueError):
            FlushPolicy(max_pending=0)

    def test_solve_many_chunks_through_its_own_admission_bound(self, graph):
        # a bulk helper larger than the queue must drain-and-continue, never
        # shed its own tail after the head was enqueued
        service = make_service(flush_policy=FlushPolicy(max_pending=3))
        key = service.register(graph)
        rng = np.random.default_rng(0)
        rhs = [rng.normal(size=graph.n) for _ in range(8)]
        reports = service.solve_many(key, rhs, eps=1e-6)
        assert len(reports) == 8
        assert service.metrics_snapshot()["queries_by_kind"]["solve"] == 8
