"""ClusterService: hash ring, sharded serving, crash recovery, shm cleanup.

The multi-process classes are marked ``cluster`` (spawned workers are too
heavy for the fast suite; CI runs them as a dedicated step).  The
:class:`~repro.serve.cluster.HashRing` tests are pure single-process and run
everywhere.
"""

import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import (
    ClusterService,
    HashRing,
    HealthPolicy,
    LaplacianService,
    TrafficConfig,
    WorkerConfig,
    WorkerCrashedError,
    compare_answers,
    generate_trace,
    resistance_query,
    run_trace,
)

SIZES = [40, 24, 30]


def make_graphs():
    """Fresh identical graph objects per service, so replays stay independent."""
    return [
        generators.grid_graph(4, 10),
        generators.random_weighted_graph(24, average_degree=4, seed=5),
        generators.grid_graph(5, 6),
    ]


def make_cluster(num_workers=2, **kwargs):
    kwargs.setdefault("worker_config", WorkerConfig(t_override=2))
    return ClusterService(num_workers=num_workers, **kwargs)


def segment_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


class TestHashRing:
    KEYS = [f"fingerprint-{i:04d}" for i in range(300)]

    def test_every_key_has_exactly_one_deterministic_owner(self):
        ring = HashRing(["w0", "w1", "w2"])
        owners = {key: ring.owner(key) for key in self.KEYS}
        assert set(owners.values()) <= {"w0", "w1", "w2"}
        fresh = HashRing(["w2", "w0", "w1"])  # insertion order must not matter
        assert {key: fresh.owner(key) for key in self.KEYS} == owners

    def test_adding_a_node_only_moves_keys_onto_it(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.owner(key) for key in self.KEYS}
        ring.add("w3")
        after = {key: ring.owner(key) for key in self.KEYS}
        moved = {key for key in self.KEYS if before[key] != after[key]}
        assert moved, "a new node should take over some keys"
        assert all(after[key] == "w3" for key in moved)

    def test_removing_a_node_only_moves_its_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.owner(key) for key in self.KEYS}
        ring.remove("w1")
        after = {key: ring.owner(key) for key in self.KEYS}
        assert "w1" not in set(after.values())
        for key in self.KEYS:
            if before[key] != "w1":
                assert after[key] == before[key]

    def test_assignment_is_roughly_balanced(self):
        ring = HashRing(["w0", "w1", "w2"], replicas=64)
        counts = {}
        for key in self.KEYS:
            counts[ring.owner(key)] = counts.get(ring.owner(key), 0) + 1
        assert min(counts.values()) > len(self.KEYS) * 0.1

    def test_nodes_property_and_empty_ring(self):
        ring = HashRing()
        assert ring.nodes == ()
        with pytest.raises(ValueError):
            ring.owner("anything")
        with pytest.raises(ValueError):
            ring.owners("anything", 2)
        ring.add("solo")
        assert ring.owner("anything") == "solo"

    def test_owners_are_distinct_and_prefixed_by_owner(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in self.KEYS[:60]:
            owners = ring.owners(key, 2)
            assert owners[0] == ring.owner(key)
            assert len(owners) == len(set(owners)) == 2
        # asking for more replicas than nodes degrades to every node
        assert set(ring.owners("key", 7)) == {"w0", "w1", "w2"}
        with pytest.raises(ValueError):
            ring.owners("key", 0)

    def test_add_moves_a_bounded_fraction_of_replica_sets(self):
        keys = [f"bulk-{i:05d}" for i in range(1000)]
        ring = HashRing(["w0", "w1", "w2", "w3"])
        before = {key: set(ring.owners(key, 2)) for key in keys}
        ring.add("w4")
        after = {key: set(ring.owners(key, 2)) for key in keys}
        moved = sum(1 for key in keys if before[key] != after[key])
        # a 5th node should attract ~2/5 of the (key, replica) slots, i.e.
        # touch ~2/5 of the replica *sets*; allow generous slack over the
        # expectation, but far below "rehash everything"
        assert 0 < moved <= int(0.6 * len(keys))
        for key in keys:
            gained = after[key] - before[key]
            assert gained <= {"w4"}, (
                f"{key}: a node other than the new one took over: {gained}"
            )

    def test_remove_moves_a_bounded_fraction_of_replica_sets(self):
        keys = [f"bulk-{i:05d}" for i in range(1000)]
        ring = HashRing(["w0", "w1", "w2", "w3"])
        before = {key: set(ring.owners(key, 2)) for key in keys}
        ring.remove("w1")
        after = {key: set(ring.owners(key, 2)) for key in keys}
        moved = sum(1 for key in keys if before[key] != after[key])
        # only keys that had w1 in their replica set may change
        assert 0 < moved <= sum(1 for key in keys if "w1" in before[key])
        for key in keys:
            if "w1" not in before[key]:
                assert after[key] == before[key]


@pytest.mark.cluster
class TestClusterServing:
    @pytest.fixture(scope="class")
    def cluster(self):
        service = make_cluster(num_workers=2)
        yield service
        service.close()

    @pytest.fixture(scope="class")
    def keys(self, cluster):
        return [cluster.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())]

    def test_registration_shards_by_ring(self, cluster, keys):
        from repro.serve import graph_fingerprint

        for key, graph in zip(keys, make_graphs()):
            assert cluster.shard_of(key) == cluster.ring.owner(graph_fingerprint(graph))
        assert set(cluster.keys()) == set(keys)

    def test_answers_match_single_process_service(self, cluster, keys):
        single = LaplacianService(t_override=2)
        single_keys = [
            single.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())
        ]
        trace = generate_trace(SIZES, TrafficConfig(seed=3, queries=30, clients=3))
        cluster_report = run_trace(
            cluster, keys, SIZES, trace, concurrent=False, record_answers=True
        )
        single_report = run_trace(
            single, single_keys, SIZES, trace, concurrent=False, record_answers=True
        )
        assert cluster_report.failed == 0
        compared, worst = compare_answers(single_report, cluster_report, atol=1e-8)
        assert compared > 0
        assert worst <= 1e-8
        single.close()

    def test_metrics_merge_worker_counters(self, cluster, keys):
        b = np.zeros(SIZES[0])
        b[0], b[-1] = 1.0, -1.0
        cluster.solve(keys[0], b)
        metrics = cluster.metrics_snapshot()
        assert metrics["workers"] == 2
        assert metrics["queries_total"] > 0
        assert metrics["registered_graphs"] == len(keys)
        assert len(metrics["per_worker"]) == 2
        assert metrics["queries_by_kind"].get("solve", 0) >= 1

    def test_duplicate_name_with_different_content_is_rejected(self, cluster, keys):
        with pytest.raises(ValueError):
            cluster.register(generators.grid_graph(3, 3), name="g0")

    def test_reregistering_same_content_is_idempotent(self, cluster, keys):
        again = cluster.register(make_graphs()[0], name="g0")
        assert again == keys[0]


@pytest.mark.cluster
class TestCrashRecovery:
    def test_kill_mid_trace_loses_no_acked_query(self):
        cluster = make_cluster(num_workers=2)
        try:
            keys = [
                cluster.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())
            ]
            trace = generate_trace(
                SIZES, TrafficConfig(seed=11, queries=40, clients=4)
            )
            victim = cluster.shard_of(keys[0])
            killer = threading.Timer(0.3, cluster.kill_worker, args=(victim,))
            killer.start()
            report = run_trace(cluster, keys, SIZES, trace, concurrent=True)
            killer.join()
            # the invariant: every acked event resolved or failed *typed*
            assert report.ok + report.shed + report.failed == report.events_total
            known = {"WorkerCrashedError", "ServiceOverloadedError"}
            assert set(report.failures_by_type) <= known
            # the cluster recovered and serves every graph again
            assert cluster.wait_recovered(timeout=30.0)
            for key, n in zip(keys, SIZES):
                b = np.zeros(n)
                b[0], b[-1] = 1.0, -1.0
                assert cluster.solve(key, b).solution.shape == (n,)
            metrics = cluster.metrics_snapshot()
            assert metrics["worker_crashes"] >= 1
            assert metrics["worker_respawns"] >= 1
        finally:
            cluster.close()

    def test_crash_without_respawn_fails_typed(self):
        # replication_factor=1: with the default of 2 a replica would
        # (correctly) keep serving and no typed error would surface
        cluster = make_cluster(num_workers=2, respawn=False, replication_factor=1)
        try:
            key = cluster.register(make_graphs()[0], name="g0")
            victim = cluster.shard_of(key)
            cluster.kill_worker(victim)
            time.sleep(0.3)  # let the receiver thread observe the dead pipe
            b = np.zeros(SIZES[0])
            b[0], b[-1] = 1.0, -1.0
            with pytest.raises(WorkerCrashedError):
                cluster.solve(key, b)
        finally:
            cluster.close()


@pytest.mark.cluster
class TestShmLifecycle:
    def _exercise(self, cluster):
        keys = [cluster.register(g, name=f"g{i}") for i, g in enumerate(make_graphs())]
        trace = generate_trace(SIZES, TrafficConfig(seed=5, queries=20, clients=2))
        run_trace(cluster, keys, SIZES, trace, concurrent=False)
        return keys

    def test_no_leaked_segments_after_close(self):
        cluster = make_cluster(num_workers=2)
        self._exercise(cluster)
        specs = cluster._store.owned_specs()
        cluster.close()
        leaked = [spec.segment for spec in specs if segment_exists(spec.segment)]
        assert leaked == []

    def test_no_leaked_segments_after_worker_crash(self):
        cluster = make_cluster(num_workers=2)
        keys = self._exercise(cluster)
        cluster.kill_worker(cluster.shard_of(keys[0]))
        assert cluster.wait_recovered(timeout=30.0)
        b = np.zeros(SIZES[0])
        b[0], b[-1] = 1.0, -1.0
        cluster.solve(keys[0], b)
        specs = cluster._store.owned_specs()
        assert specs, "the cluster should have published shared artifacts"
        cluster.close()
        leaked = [spec.segment for spec in specs if segment_exists(spec.segment)]
        assert leaked == []


@pytest.mark.cluster
class TestReplication:
    def test_replica_sets_failover_and_lockstep_mutation(self):
        cluster = make_cluster(num_workers=2)  # replication_factor defaults to 2
        try:
            key = cluster.register(make_graphs()[0], name="g0")
            replicas = cluster.replicas_of(key)
            assert len(set(replicas)) == 2
            fingerprint = cluster._graphs[key].fingerprint
            assert replicas == cluster.ring.owners(fingerprint, 2)
            b = np.zeros(SIZES[0])
            b[0], b[-1] = 1.0, -1.0
            # mutate before the kill: the surviving replica must have seen it
            cluster.mutate(key, "add", 0, 7, 1.5)
            expected = cluster.solve(key, b).solution
            cluster.kill_worker(cluster.shard_of(key))
            # the replica serves the *post-mutation* graph during the respawn gap
            got = cluster.solve(key, b).solution
            np.testing.assert_allclose(got, expected, atol=1e-8)
            assert cluster.wait_recovered(timeout=30.0)
            metrics = cluster.metrics_snapshot()
            assert metrics["replication_factor"] == 2
            assert metrics["failures_total"] == 0
        finally:
            cluster.close()

    def test_counters_stay_consistent_when_no_replica_is_up(self):
        cluster = make_cluster(num_workers=2, respawn=False, replication_factor=1)
        try:
            key = cluster.register(make_graphs()[0], name="g0")
            b = np.zeros(SIZES[0])
            b[0], b[-1] = 1.0, -1.0
            cluster.solve(key, b)
            cluster.kill_worker(cluster.shard_of(key))
            time.sleep(0.3)  # let the receiver thread observe the dead pipe
            for _ in range(5):
                with pytest.raises(WorkerCrashedError):
                    cluster.solve(key, b)
            metrics = cluster.metrics_snapshot()
            # submissions that never reached a worker are neither queries nor
            # failures: the failure rate can never exceed 1
            assert metrics["queries_total"] == 1
            assert metrics["failures_total"] == 0
            assert metrics["failures_total"] <= metrics["queries_total"]
        finally:
            cluster.close()


@pytest.mark.cluster
class TestMembership:
    def _many_graphs(self):
        return [
            generators.random_weighted_graph(16 + 2 * i, average_degree=4, seed=20 + i)
            for i in range(6)
        ]

    def test_add_worker_moves_only_ring_keys_and_reattaches_shm(self):
        cluster = make_cluster(num_workers=2, replication_factor=1)
        try:
            graphs = self._many_graphs()
            keys = [cluster.register(g, name=f"m{i}") for i, g in enumerate(graphs)]
            # warm a dense resistance oracle per graph so specs are published
            for key in keys:
                cluster.effective_resistance(key, 0, 1)
            assert cluster._store.owned_specs(), "expected published shm artifacts"
            before = {key: cluster.replicas_of(key) for key in keys}
            moved = cluster.add_worker()
            new_name = "worker-2"
            assert new_name in cluster.ring.nodes
            # exactly the keys whose ring placement changed were moved, and
            # with rf=1 every moved key is now primaried on the new worker
            for key in keys:
                fingerprint = cluster._graphs[key].fingerprint
                assert cluster.replicas_of(key) == cluster.ring.owners(
                    fingerprint, cluster.replication_factor
                )
                assert (cluster.replicas_of(key) != before[key]) == (key in moved)
            assert moved, "a third worker should attract some keys"
            assert all(cluster.shard_of(key) == new_name for key in moved)
            # the new worker re-attached the published oracle instead of
            # rebuilding: its very first resistance query is a cache hit
            result = cluster._submit_and_wait(resistance_query(moved[0], 0, 1))
            assert result.cache_hit, "expected shm re-attach, not a rebuild"
        finally:
            cluster.close()

    def test_remove_worker_drains_and_rehomes_its_keys(self):
        cluster = make_cluster(num_workers=3)
        try:
            graphs = self._many_graphs()
            keys = [cluster.register(g, name=f"m{i}") for i, g in enumerate(graphs)]
            victim = cluster.shard_of(keys[0])
            moved = cluster.remove_worker(victim, drain=True)
            assert victim not in cluster.ring.nodes
            assert keys[0] in moved
            b = None
            for key, graph in zip(keys, graphs):
                assert victim not in cluster.replicas_of(key)
                fingerprint = cluster._graphs[key].fingerprint
                assert cluster.replicas_of(key) == cluster.ring.owners(
                    fingerprint, cluster.replication_factor
                )
                b = np.zeros(graph.n)
                b[0], b[-1] = 1.0, -1.0
                assert cluster.solve(key, b).solution.shape == (graph.n,)
            remaining = list(cluster.ring.nodes)
            cluster.remove_worker(remaining[0], drain=True)
            with pytest.raises(ValueError):
                cluster.remove_worker(remaining[1], drain=True)
        finally:
            cluster.close()

    def test_removing_unknown_or_last_worker_raises(self):
        cluster = make_cluster(num_workers=1, replication_factor=1)
        try:
            with pytest.raises(KeyError):
                cluster.remove_worker("nope")
            with pytest.raises(ValueError):
                cluster.remove_worker("worker-0")
        finally:
            cluster.close()


@pytest.mark.cluster
class TestControlTimeout:
    def test_wedged_worker_is_killed_not_leaked(self):
        # the timeout must stay well under the 8s wedge so the wedged control
        # round-trip kills, but not so tight that a loaded single-core CI box
        # trips it on the ordinary register round-trip (observed at 1.0s)
        cluster = make_cluster(
            num_workers=2,
            replication_factor=1,
            control_timeout_seconds=3.0,
            health=HealthPolicy(enabled=False),
        )
        try:
            key = cluster.register(make_graphs()[0], name="g0")
            victim = cluster.shard_of(key)
            pid_before = cluster._workers[victim].process.pid
            cluster.wedge_worker(victim, 8.0)
            # the control round-trip times out at 1s and *kills* the wedged
            # process instead of leaving it alive owning the shard
            with pytest.raises(WorkerCrashedError):
                cluster.mutate(key, "add", 0, 7, 1.5)
            assert cluster.wait_recovered(timeout=30.0)
            assert cluster._workers[victim].process.pid != pid_before
            b = np.zeros(SIZES[0])
            b[0], b[-1] = 1.0, -1.0
            assert cluster.solve(key, b).solution.shape == (SIZES[0],)
        finally:
            cluster.close()
