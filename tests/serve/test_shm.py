"""SharedArtifactStore: publish/attach round trips, refcounts, unlink lifecycle."""

from multiprocessing import shared_memory

import numpy as np
import pytest
import scipy.sparse as sp

from repro.serve import (
    SharedArtifactStore,
    csr_from_arrays,
    csr_to_arrays,
)


@pytest.fixture
def store():
    s = SharedArtifactStore()
    yield s
    s.close(unlink=True)


def publish_sample(store, kind="resistance_oracle", version=0):
    arrays = {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.array([1, 2, 3], dtype=np.int32),
    }
    spec = store.publish(
        kind, "fp-abc", version, ("exact", 7), arrays, meta={"n": 3, "exact": True}
    )
    return spec, arrays


def segment_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


class TestPublishAttach:
    def test_round_trip_values(self, store):
        spec, arrays = publish_sample(store)
        attached = store.attach(spec)
        np.testing.assert_array_equal(attached.arrays["a"], arrays["a"])
        np.testing.assert_array_equal(attached.arrays["b"], arrays["b"])
        assert attached.arrays["a"].dtype == np.float64
        assert attached.arrays["b"].dtype == np.int32

    def test_views_are_read_only(self, store):
        spec, _ = publish_sample(store)
        attached = store.attach(spec)
        with pytest.raises((ValueError, RuntimeError)):
            attached.arrays["a"][0, 0] = 99.0

    def test_arrays_are_64_byte_aligned(self, store):
        spec, _ = publish_sample(store)
        assert all(array_spec.offset % 64 == 0 for array_spec in spec.arrays)

    def test_spec_identity_and_meta(self, store):
        spec, _ = publish_sample(store)
        assert spec.kind == "resistance_oracle"
        assert spec.graph_key == "fp-abc"
        assert spec.version == 0
        assert spec.params == ("exact", 7)
        assert spec.meta_dict() == {"n": 3, "exact": True}
        assert spec.nbytes > 0

    def test_spec_is_picklable(self, store):
        import pickle

        spec, _ = publish_sample(store)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestRefcounts:
    def test_attach_release_refcounting(self, store):
        spec, _ = publish_sample(store)
        first = store.attach(spec)
        second = store.attach(spec)
        assert store.refcount(spec.segment) == 2
        store.release(first)
        assert store.refcount(spec.segment) == 1
        store.release(second)
        assert store.refcount(spec.segment) == 0

    def test_owned_specs_reports_published(self, store):
        spec, _ = publish_sample(store)
        assert spec in store.owned_specs()


class TestLifecycle:
    def test_unlink_removes_segment(self, store):
        spec, _ = publish_sample(store)
        assert segment_exists(spec.segment)
        assert store.unlink(spec.segment)
        assert not segment_exists(spec.segment)
        # second unlink is a clean no-op
        assert not store.unlink(spec.segment)

    def test_close_unlinks_everything_owned(self):
        store = SharedArtifactStore()
        specs = [publish_sample(store, version=v)[0] for v in range(3)]
        store.close(unlink=True)
        assert not any(segment_exists(spec.segment) for spec in specs)

    def test_close_without_unlink_keeps_segment(self):
        # worker-side shutdown: close() drops attachments but never unlinks
        publisher = SharedArtifactStore()
        spec, _ = publish_sample(publisher)
        publisher.close(unlink=False)
        assert segment_exists(spec.segment)
        # the adopting side (the cluster parent) removes it
        parent = SharedArtifactStore()
        parent.adopt(spec)
        parent.close(unlink=True)
        assert not segment_exists(spec.segment)

    def test_adopt_transfers_unlink_ownership(self):
        publisher = SharedArtifactStore()
        spec, _ = publish_sample(publisher)
        parent = SharedArtifactStore()
        parent.adopt(spec)
        assert spec in parent.owned_specs()
        parent.close(unlink=True)
        assert not segment_exists(spec.segment)
        publisher.close(unlink=True)  # already gone; must not raise


class TestCsrHelpers:
    def test_round_trip_through_shared_memory(self, store):
        matrix = sp.random(17, 13, density=0.2, format="csr", random_state=3)
        arrays = csr_to_arrays(matrix, "factor")
        spec = store.publish(
            "solver_preproc", "fp", 1, (), arrays, meta={"factor_shape": (17, 13)}
        )
        attached = store.attach(spec)
        rebuilt = csr_from_arrays(
            attached.arrays, "factor", spec.meta_dict()["factor_shape"]
        )
        np.testing.assert_allclose(rebuilt.toarray(), matrix.toarray())
