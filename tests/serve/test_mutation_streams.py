"""Differential stream testing: lazy repair vs fresh-rebuild reference.

Seeded interleaved mutate/query streams run against two services sharing one
evolving graph: the default lazily-repairing service under test, and a
``repair=False`` reference whose every answer comes from artifacts rebuilt
from scratch against the current content.  Exact-path answers must agree to
1e-8 at every step (``inf`` agreeing on cross-component pairs); sketched
answers must stay within the oracle's *effective* accuracy bound of the
exact reference.  Cache counters close the loop: on the repairable
subsequences the lazy service's answers really came from repairs
(``stats.repairs`` grows, ``stats.misses`` does not), while the reference
rebuilt throughout (``repairs == 0``).
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.serve import LaplacianService

TOL = 1e-8
T_OVERRIDE = 2


def make_pair(graph, oracle_limit=None):
    """(lazy service, reference service) registered on the SAME graph object.

    Sharing the object means one mutation drives both registries' journals;
    each service still tracks its own registered version, cache and
    artifacts, so the reference's rebuilds never leak into the lazy cache.
    """
    lazy = LaplacianService(t_override=T_OVERRIDE, auto_flush=False)
    ref = LaplacianService(t_override=T_OVERRIDE, auto_flush=False, repair=False)
    lazy_key = lazy.register(graph)
    ref_key = ref.register(graph)
    if oracle_limit is not None:
        lazy.planner.oracle_limit = oracle_limit
        ref.planner.oracle_limit = oracle_limit
    return lazy, lazy_key, ref, ref_key


def random_pairs(rng, n, count):
    return [
        (int(u), int(v))
        for u, v in zip(rng.integers(0, n, count), rng.integers(0, n, count))
    ]


def mutate_once(graph, rng, ops):
    """One random mutation drawn from ``ops``; returns the op applied."""
    op = str(rng.choice(ops))
    if op == "add":
        while True:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not graph.has_edge(u, v):
                break
        graph.add_edge(u, v, float(rng.uniform(0.5, 2.0)))
    elif op == "update":
        edges = graph.edge_list()
        u, v, w = edges[int(rng.integers(0, len(edges)))]
        graph.add_edge(u, v, w + float(rng.uniform(0.1, 1.0)))
    else:
        edges = graph.edge_list()
        u, v, _ = edges[int(rng.integers(0, len(edges)))]
        graph.remove_edge(u, v)
    return op


class TestExactPathStreams:
    @pytest.mark.parametrize("ops", [("add", "update"), ("add", "update", "remove")])
    def test_dense_oracle_stream_agrees_and_repairs(self, ops):
        graph = generators.random_weighted_graph(300, average_degree=8, seed=7)
        lazy, lk, ref, rk = make_pair(graph)
        rng = np.random.default_rng(hash(ops) % 2**32)
        lazy.effective_resistances(lk, random_pairs(rng, graph.n, 8))  # warm
        misses_warm = lazy.cache.stats.misses

        for step in range(18):
            if step % 3 == 2:
                mutate_once(graph, rng, ops)
            pairs = random_pairs(rng, graph.n, 8)
            got = lazy.effective_resistances(lk, pairs)
            want = ref.effective_resistances(rk, pairs)
            np.testing.assert_allclose(got, want, atol=TOL, rtol=1e-7)

        # the whole stream was repairable: every post-mutation answer came
        # from a repaired oracle, never a rebuilt one
        assert lazy.cache.stats.repairs >= 6
        assert lazy.cache.stats.misses == misses_warm
        assert ref.cache.stats.repairs == 0  # the reference always rebuilds

    def test_grounded_stream_with_bridge_removals(self):
        # every edge of a path is a bridge: each removal splits a component,
        # exercising the split re-grounding path, and cross-split pairs must
        # agree on inf with the fresh-rebuild reference
        graph = generators.path_graph(60)
        lazy, lk, ref, rk = make_pair(graph, oracle_limit=10)
        rng = np.random.default_rng(19)
        lazy.effective_resistances(lk, [(0, 5), (20, 40)])  # warm
        misses_warm = lazy.cache.stats.misses

        for cut in ((45, 46), (15, 16)):
            graph.remove_edge(*cut)
            pairs = random_pairs(rng, graph.n, 16)
            got = lazy.effective_resistances(lk, pairs)
            want = ref.effective_resistances(rk, pairs)
            np.testing.assert_allclose(got, want, atol=TOL, rtol=1e-7)
            assert np.any(np.isinf(want))  # the stream really crossed splits

        # both bridge removals were absorbed by re-grounding the split-off
        # component -- repaired in place, no refactorisation
        assert lazy.cache.stats.repairs == 2
        assert lazy.cache.stats.misses == misses_warm
        (grounded,) = [e for e in lazy.cache.entries() if e.kind == "grounded"]
        assert grounded.value.updates_applied == 4  # 2 removals x 2 slots

    def test_long_burst_falls_back_to_rebuild_and_still_agrees(self):
        graph = generators.random_weighted_graph(300, average_degree=8, seed=9)
        lazy, lk, ref, rk = make_pair(graph)
        rng = np.random.default_rng(23)
        lazy.effective_resistances(lk, random_pairs(rng, graph.n, 8))
        lazy.planner.repair_delta_limit = 3
        for _ in range(6):  # one revalidation sees a 6-record delta: too long
            mutate_once(graph, rng, ("add",))
        pairs = random_pairs(rng, graph.n, 8)
        got = lazy.effective_resistances(lk, pairs)
        want = ref.effective_resistances(rk, pairs)
        np.testing.assert_allclose(got, want, atol=TOL, rtol=1e-7)
        assert lazy.cache.stats.repairs == 0  # rebuilt, correctly

    def test_solve_stream_agrees_through_mutations(self):
        graph = generators.random_weighted_graph(300, average_degree=8, seed=11)
        lazy, lk, ref, rk = make_pair(graph)
        rng = np.random.default_rng(29)
        for step in range(6):
            if step % 2 == 1:
                mutate_once(graph, rng, ("add", "update"))
            b = rng.normal(size=graph.n)
            got = lazy.solve(lk, b, eps=1e-8).solution
            want = ref.solve(rk, b, eps=1e-8).solution
            scale = max(1.0, float(np.linalg.norm(want)))
            assert np.linalg.norm(got - want) <= 1e-6 * scale
        assert lazy.cache.stats.repairs >= 2
        assert ref.cache.stats.repairs == 0


class TestSketchedStreams:
    def test_sketched_stream_repairs_across_mixed_traffic(self):
        graph = generators.random_weighted_graph(400, average_degree=8, seed=5)
        eta = 0.5
        lazy, lk, ref, rk = make_pair(graph, oracle_limit=100)
        rng = np.random.default_rng(31)
        pairs = random_pairs(rng, graph.n, 48)
        lazy.effective_resistances(lk, pairs, eta=eta)  # bulk: builds sketch
        (sketch,) = [
            e for e in lazy.cache.entries() if e.kind == "sketched_resistance"
        ]
        oracle = sketch.value
        misses_warm = lazy.cache.stats.misses

        for step in range(9):
            if step % 3 == 0:
                op = ("add", "update", "remove")[(step // 3) % 3]
                mutate_once(graph, rng, (op,))
            pairs = random_pairs(rng, graph.n, 48)
            approx = lazy.effective_resistances(lk, pairs, eta=eta)
            exact = ref.effective_resistances(rk, pairs)
            mask = np.isfinite(exact) & (exact > 0)
            rel = np.abs(approx[mask] - exact[mask]) / exact[mask]
            assert float(rel.max()) <= oracle.eta_effective <= eta

        # all three mutation flavours were absorbed by the SAME oracle
        # object: appended column, re-derived column reweight, retirement
        (sketch_after,) = [
            e for e in lazy.cache.entries() if e.kind == "sketched_resistance"
        ]
        assert sketch_after.value is oracle
        assert oracle.appended == 1
        assert oracle.reweighted == 1
        assert oracle.removed == 1
        # repaired, never rebuilt: sketch + grounded migrate per mutation
        assert lazy.cache.stats.misses == misses_warm
        assert lazy.cache.stats.repairs >= 6
        assert ref.cache.stats.repairs == 0

    def test_sketch_dies_on_component_split_but_stream_stays_correct(self):
        # a long path: the only cycle-free topology where a removal splits.
        # The sketched oracle cannot follow a split (its chi is inconsistent
        # across the re-grounding) -- it must be dropped and rebuilt -- while
        # answers keep agreeing with the reference, inf included.
        graph = generators.path_graph(220)
        eta = 0.6
        lazy, lk, ref, rk = make_pair(graph, oracle_limit=100)
        rng = np.random.default_rng(37)
        pairs = random_pairs(rng, graph.n, 48)
        lazy.effective_resistances(lk, pairs, eta=eta)
        assert any(
            e.kind == "sketched_resistance" for e in lazy.cache.entries()
        )

        graph.remove_edge(110, 111)  # a bridge: splits the path
        pairs = random_pairs(rng, graph.n, 48)
        approx = lazy.effective_resistances(lk, pairs, eta=eta)
        exact = ref.effective_resistances(rk, pairs)
        # inf pattern identical: the sketch that served reflects the split
        np.testing.assert_array_equal(np.isinf(approx), np.isinf(exact))
        mask = np.isfinite(exact) & (exact > 0)
        rel = np.abs(approx[mask] - exact[mask]) / exact[mask]
        assert float(rel.max()) <= eta
