"""Tests for the mixed-norm-ball projection (Section 4.3, Lemma 4.10)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest.ledger import CommunicationPrimitives
from repro.linalg.mixed_ball import project_mixed_ball, project_mixed_ball_reference


class TestFeasibilityAndOptimality:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=40)
        l = rng.uniform(0.2, 4.0, size=40)
        fast = project_mixed_ball(a, l)
        ref = project_mixed_ball_reference(a, l)
        assert fast.value == pytest.approx(ref.value, rel=1e-4, abs=1e-8)
        assert fast.constraint_value(l) <= 1 + 1e-6

    def test_zero_vector_input(self):
        result = project_mixed_ball(np.zeros(5), np.ones(5))
        assert result.value == 0.0
        np.testing.assert_array_equal(result.x, np.zeros(5))

    def test_single_coordinate(self):
        # with one coordinate the optimum balances the two norm terms
        result = project_mixed_ball(np.array([2.0]), np.array([1.0]))
        assert result.constraint_value(np.array([1.0])) <= 1 + 1e-9
        # value should beat the pure-infinity and pure-2-norm splits are equal here
        assert result.value == pytest.approx(2.0 * 0.5, rel=1e-2)

    def test_huge_l_reduces_to_euclidean_projection(self):
        # when l is enormous the infinity term is negligible: optimum ~ ||a||_2
        rng = np.random.default_rng(3)
        a = rng.normal(size=20)
        l = 1e6 * np.ones(20)
        result = project_mixed_ball(a, l)
        assert result.value == pytest.approx(float(np.linalg.norm(a)), rel=1e-3)

    def test_tiny_l_still_feasible(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=20)
        l = 1e-6 * np.ones(20)
        result = project_mixed_ball(a, l)
        assert result.constraint_value(l) <= 1 + 1e-6
        ref = project_mixed_ball_reference(a, l)
        assert result.value >= ref.value - 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            project_mixed_ball(np.ones(3), np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ValueError):
            project_mixed_ball(np.ones(3), np.ones(4))


class TestRoundAccounting:
    def test_rounds_charged_per_evaluation(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=25)
        l = rng.uniform(0.5, 2.0, size=25)
        comm = CommunicationPrimitives(10)
        result = project_mixed_ball(a, l, comm=comm)
        assert result.rounds > 0
        assert result.evaluations > 0
        grouped = comm.ledger.rounds_by_operation()
        assert grouped["global_sum"] > 0

    def test_evaluation_count_logarithmic(self):
        rng = np.random.default_rng(6)
        small = project_mixed_ball(rng.normal(size=10), rng.uniform(0.5, 2, 10))
        large = project_mixed_ball(rng.normal(size=5000), rng.uniform(0.5, 2, 5000))
        # the number of concave-search evaluations is independent of m
        assert large.evaluations <= small.evaluations + 5


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=10**6),
)
def test_property_feasible_and_not_worse_than_scaled_inputs(m, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=m)
    l = rng.uniform(0.1, 5.0, size=m)
    result = project_mixed_ball(a, l)
    # always feasible
    assert result.constraint_value(l) <= 1 + 1e-6
    # never worse than two easy feasible candidates: 0 and the scaled-a point
    assert result.value >= -1e-12
    candidate = a / (np.linalg.norm(a) + np.max(np.abs(a) / l) + 1e-300)
    assert result.value >= float(a @ candidate) - 1e-6
