"""Tests for the JL-sketched effective-resistance oracle.

The accuracy contract -- relative error at most ``eta`` on every pair, with
high probability over the sketch seed -- is pinned against the exact dense
:class:`ResistanceOracle` on *all* vertex pairs of seeded workloads spanning
the generator spread (random / Barabasi-Albert / Watts-Strogatz / grid), all
well inside the ``n <= 2048`` regime where the dense oracle is available.
"""

import numpy as np
import pytest

from repro.core import api
from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.linalg.leverage import approximate_edge_leverage_scores, exact_leverage_scores
from repro.linalg.resistance import SketchedResistanceOracle
from repro.linalg.sparse_backend import GroundedLaplacianSolver, ResistanceOracle, incidence_csr

WORKLOADS = [
    ("random-300", lambda: generators.random_weighted_graph(300, average_degree=8, seed=7)),
    ("barabasi-albert-300", lambda: generators.barabasi_albert(300, attach=4, seed=11)),
    ("watts-strogatz-300", lambda: generators.watts_strogatz(300, k=6, beta=0.1, seed=13)),
    ("grid-18x18", lambda: generators.grid_graph(18, 18)),
]


def all_pairs(n):
    return np.triu_indices(n, k=1)


def exact_leverage_scores_of_incidence(graph):
    import scipy.sparse as sp

    B, w = incidence_csr(graph)
    return exact_leverage_scores(sp.diags(np.sqrt(w)) @ B)


class TestAccuracyContract:
    @pytest.mark.parametrize("name,factory", WORKLOADS)
    @pytest.mark.parametrize("eta", [0.5, 0.25])
    def test_relative_error_at_most_eta_on_all_pairs(self, name, factory, eta):
        graph = factory()
        exact = ResistanceOracle(graph)
        u, v = all_pairs(graph.n)
        reference = exact.pair_resistances(u, v)
        oracle = SketchedResistanceOracle(graph, eta=eta, seed=0)
        approx = oracle.pair_resistances(u, v)
        relative = np.abs(approx - reference) / reference
        assert float(relative.max()) <= eta, (name, eta, float(relative.max()))

    def test_tight_eta_degrades_to_exact_identity_sketch(self):
        """k >= m: the identity sketch makes the oracle exact, not bigger."""
        graph = generators.grid_graph(8, 8)
        oracle = SketchedResistanceOracle(graph, eta=0.05, seed=0)
        assert oracle.exact
        assert oracle.k == graph.m
        exact = ResistanceOracle(graph)
        u, v = all_pairs(graph.n)
        np.testing.assert_allclose(
            oracle.pair_resistances(u, v), exact.pair_resistances(u, v),
            rtol=1e-5, atol=1e-9,
        )

    def test_identity_sketch_holds_eta_below_float32_rounding(self):
        """The exact branch stores float64, so even eta=1e-7 is honoured."""
        graph = generators.random_weighted_graph(80, average_degree=5, seed=3)
        eta = 1e-7
        oracle = SketchedResistanceOracle(graph, eta=eta, seed=0)
        assert oracle.exact
        assert oracle._embedding.dtype == np.float64
        u, v = all_pairs(graph.n)
        reference = ResistanceOracle(graph).pair_resistances(u, v)
        relative = np.abs(oracle.pair_resistances(u, v) - reference) / reference
        assert float(relative.max()) <= eta


class TestDeterminism:
    def test_same_seed_same_answers(self):
        graph = generators.random_weighted_graph(200, average_degree=6, seed=3)
        u, v = all_pairs(graph.n)
        a = SketchedResistanceOracle(graph, eta=0.5, seed=42).pair_resistances(u, v)
        b = SketchedResistanceOracle(graph, eta=0.5, seed=42).pair_resistances(u, v)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        graph = generators.random_weighted_graph(200, average_degree=6, seed=3)
        u, v = all_pairs(graph.n)
        a = SketchedResistanceOracle(graph, eta=0.5, seed=1).pair_resistances(u, v)
        b = SketchedResistanceOracle(graph, eta=0.5, seed=2).pair_resistances(u, v)
        assert not np.array_equal(a, b)


class TestSemantics:
    def test_cross_component_inf_and_ties_zero(self):
        graph = WeightedGraph(8)
        for a, b, w in [(0, 1, 1.0), (1, 2, 2.0), (4, 5, 1.0), (5, 6, 3.0)]:
            graph.add_edge(a, b, w)
        oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0)
        r = oracle.pair_resistances([0, 0, 3, 4], [2, 0, 7, 4])
        assert np.isfinite(r[0]) and r[0] > 0
        assert r[1] == 0.0
        assert np.isinf(r[2])
        assert r[3] == 0.0

    def test_empty_graph(self):
        oracle = SketchedResistanceOracle(WeightedGraph(4), eta=0.5, seed=0)
        r = oracle.pair_resistances([0, 1], [1, 1])
        assert np.isinf(r[0]) and r[1] == 0.0

    def test_validation(self):
        graph = generators.path_graph(6)
        for bad_eta in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                SketchedResistanceOracle(graph, eta=bad_eta)
        with pytest.raises(ValueError):
            SketchedResistanceOracle(graph, eta=0.5, k_override=0)
        oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0)
        with pytest.raises(ValueError):
            oracle.pair_resistances([0], [6])
        with pytest.raises(ValueError):
            oracle.pair_resistances([0, 1], [1])

    def test_reuses_shared_grounded_solver(self):
        graph = generators.random_weighted_graph(120, average_degree=6, seed=5)
        grounded = GroundedLaplacianSolver(graph)
        oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0, grounded=grounded)
        u, v = all_pairs(graph.n)
        fresh = SketchedResistanceOracle(graph, eta=0.5, seed=0)
        np.testing.assert_array_equal(
            oracle.pair_resistances(u, v), fresh.pair_resistances(u, v)
        )

    def test_nbytes_tracks_embedding(self):
        graph = generators.random_weighted_graph(150, average_degree=6, seed=5)
        oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0)
        assert oracle.nbytes() >= graph.n * oracle.k * 4

    def test_k_override(self):
        graph = generators.random_weighted_graph(150, average_degree=6, seed=5)
        oracle = SketchedResistanceOracle(graph, eta=0.9, k_override=17)
        assert oracle.k == 17 and not oracle.exact


class TestLeverageReuse:
    def test_edge_leverage_scores_within_eta(self):
        graph = generators.random_weighted_graph(250, average_degree=8, seed=9)
        exact = exact_leverage_scores_of_incidence(graph)
        report = approximate_edge_leverage_scores(graph, eta=0.5, seed=0)
        relative = np.abs(report.scores - exact) / exact
        assert float(relative.max()) <= 0.5
        assert report.sketch_rows >= 1 and report.solves == report.sketch_rows

    def test_shared_oracle_is_used_verbatim(self):
        graph = generators.random_weighted_graph(150, average_degree=6, seed=9)
        oracle = SketchedResistanceOracle(graph, eta=0.25, seed=0)
        report = approximate_edge_leverage_scores(graph, eta=0.5, oracle=oracle)
        np.testing.assert_array_equal(report.scores, oracle.edge_leverage_scores(graph))

    def test_looser_shared_oracle_rejected(self):
        graph = generators.path_graph(10)
        oracle = SketchedResistanceOracle(graph, eta=0.9, k_override=3)
        with pytest.raises(ValueError):
            approximate_edge_leverage_scores(graph, eta=0.1, oracle=oracle)

    def test_looser_but_exact_shared_oracle_accepted(self):
        # an identity-sketch oracle is exact: its nominal eta does not matter
        graph = generators.path_graph(10)
        oracle = SketchedResistanceOracle(graph, eta=0.9)
        assert oracle.exact
        report = approximate_edge_leverage_scores(graph, eta=0.1, oracle=oracle)
        exact = exact_leverage_scores_of_incidence(graph)
        np.testing.assert_allclose(report.scores, exact, rtol=1e-8)

    def test_mismatched_graph_rejected(self):
        big = generators.random_weighted_graph(40, average_degree=4, seed=1)
        other = generators.path_graph(12)  # vertices all in range of `big`
        oracle = SketchedResistanceOracle(big, eta=0.5, seed=0)
        with pytest.raises(ValueError):
            oracle.edge_leverage_scores(other)
        with pytest.raises(ValueError):
            approximate_edge_leverage_scores(other, eta=0.5, oracle=oracle)


class TestApiKnob:
    def test_api_eta_routes_long_pair_lists_to_sketched_oracle(self):
        graph = generators.random_weighted_graph(300, average_degree=8, seed=7)
        rng = np.random.default_rng(1)
        pairs = [  # longer than the sketch dimension, so the build amortises
            (int(a), int(b)) for a, b in rng.integers(0, graph.n, (1200, 2))
        ]
        exact = api.effective_resistances(graph, pairs=pairs)
        approx = api.effective_resistances(graph, pairs=pairs, eta=0.5, seed=0)
        mask = np.isfinite(exact) & (exact > 0)
        assert np.all(np.abs(approx[mask] - exact[mask]) / exact[mask] <= 0.5)
        ties = np.asarray([a == b for a, b in pairs])
        np.testing.assert_array_equal(approx[ties], 0.0)

    def test_api_eta_short_pair_lists_answered_exactly(self):
        # fewer pairs than sketch rows: the one-shot facade must not pay a
        # k-solve sketch build, it answers exactly (satisfying any eta)
        graph = generators.random_weighted_graph(300, average_degree=8, seed=7)
        pairs = [(0, 10), (5, 250), (17, 17)]
        exact = api.effective_resistances(graph, pairs=pairs)
        approx = api.effective_resistances(graph, pairs=pairs, eta=0.5, seed=0)
        np.testing.assert_allclose(approx, exact, rtol=1e-9)

    def test_api_eta_with_edge_pairs_default(self):
        graph = generators.grid_graph(20, 20)
        exact = api.effective_resistances(graph)
        approx = api.effective_resistances(graph, eta=0.5, seed=0)
        assert approx.shape == exact.shape
        assert np.all(np.abs(approx - exact) / exact <= 0.5)

    def test_api_eta_validated_even_for_short_lists(self):
        graph = generators.path_graph(8)
        with pytest.raises(ValueError):
            api.effective_resistances(graph, pairs=[(0, 1)], eta=2.0)

    def test_api_exact_path_unchanged_without_eta(self):
        graph = generators.grid_graph(6, 6)
        np.testing.assert_array_equal(
            api.effective_resistances(graph), api.effective_resistances(graph)
        )
