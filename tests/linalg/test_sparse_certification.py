"""Dense vs sparse spectral certification agreement (ROADMAP item).

The sparse path grounds one vertex per component and reads both pencil
extremes off ``scipy.sparse.linalg.eigsh``; it must agree with the dense
``np.linalg.eigh`` reference to ~1e-8 on healthy sparsifiers and make the
same decisions on degenerate ones.
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import (
    is_spectral_sparsifier,
    relative_condition_number,
    spectral_approximation_factor,
)
from repro.linalg import sparse_backend
from repro.sparsify import spectral_sparsify


def _factor_pair(graph, sparsifier):
    dense = spectral_approximation_factor(graph, sparsifier, backend="dense")
    sparse = spectral_approximation_factor(graph, sparsifier, backend="sparse")
    return dense, sparse


class TestAgreement:
    @pytest.mark.parametrize(
        "graph",
        [
            generators.grid_graph(9, 10),
            generators.random_weighted_graph(90, average_degree=8, max_weight=8, seed=5),
            generators.barbell_graph(12, 4),
        ],
        ids=["grid", "random", "barbell"],
    )
    def test_sparsifier_factors_match_dense(self, graph):
        result = spectral_sparsify(graph, eps=0.5, seed=9, t_override=2)
        dense, sparse = _factor_pair(graph, result.sparsifier)
        np.testing.assert_allclose(sparse, dense, rtol=1e-8, atol=1e-8)

    def test_identical_graph_is_a_perfect_sparsifier(self):
        g = generators.random_weighted_graph(60, average_degree=6, seed=1)
        dense, sparse = _factor_pair(g, g.copy())
        np.testing.assert_allclose(dense, (1.0, 1.0), atol=1e-9)
        np.testing.assert_allclose(sparse, (1.0, 1.0), atol=1e-9)

    def test_uniform_scaling_shifts_both_factors(self):
        g = generators.grid_graph(8, 8)
        doubled = WeightedGraph(g.n)
        u, v, w = g.edge_array()
        doubled.add_edges(u, v, 2.0 * w)
        dense, sparse = _factor_pair(g, doubled)
        np.testing.assert_allclose(dense, (0.5, 0.5), atol=1e-9)
        np.testing.assert_allclose(sparse, (0.5, 0.5), atol=1e-9)

    def test_above_auto_threshold_agreement(self):
        """One certification above DENSE_BACKEND_LIMIT so the ARPACK path
        (rather than the small-system LAPACK fallback) is exercised."""
        graph = generators.random_weighted_graph(
            sparse_backend.DENSE_BACKEND_LIMIT + 64, average_degree=6, seed=13
        )
        result = spectral_sparsify(graph, eps=0.5, seed=4, t_override=2)
        dense, sparse = _factor_pair(graph, result.sparsifier)
        np.testing.assert_allclose(sparse, dense, rtol=1e-8, atol=1e-8)
        auto = spectral_approximation_factor(graph, result.sparsifier)
        assert auto == sparse  # auto resolves to the sparse path at this size

    def test_condition_number_and_certification_agree(self):
        g = generators.random_weighted_graph(80, average_degree=7, seed=3)
        result = spectral_sparsify(g, eps=0.5, seed=8, t_override=2)
        for eps in (0.25, 0.75, 2.0):
            assert is_spectral_sparsifier(
                g, result.sparsifier, eps, backend="dense"
            ) == is_spectral_sparsifier(g, result.sparsifier, eps, backend="sparse")
        kd = relative_condition_number(g, result.sparsifier, backend="dense")
        ks = relative_condition_number(g, result.sparsifier, backend="sparse")
        np.testing.assert_allclose(ks, kd, rtol=1e-8)


class TestDegenerateCases:
    def test_empty_sparsifier_is_never_certified(self):
        g = generators.path_graph(50)
        empty = WeightedGraph(50)
        assert spectral_approximation_factor(g, empty, backend="dense") == (0.0, np.inf)
        assert spectral_approximation_factor(g, empty, backend="sparse") == (0.0, np.inf)
        for backend in ("dense", "sparse"):
            assert not is_spectral_sparsifier(g, empty, eps=10.0, backend=backend)
            assert relative_condition_number(g, empty, backend=backend) == np.inf

    def test_both_empty_is_trivially_perfect(self):
        g = WeightedGraph(7)
        assert spectral_approximation_factor(g, g.copy(), backend="dense") == (1.0, 1.0)
        assert spectral_approximation_factor(g, g.copy(), backend="sparse") == (1.0, 1.0)

    def test_disconnected_sparsifier_gets_infinite_upper_factor(self):
        g = generators.path_graph(40)
        disconnected = WeightedGraph(40)
        for i in range(39):
            if i != 20:
                disconnected.add_edge(i, i + 1, 1.0)
        for backend in ("dense", "sparse"):
            lo, hi = spectral_approximation_factor(g, disconnected, backend=backend)
            assert hi == np.inf
            assert not is_spectral_sparsifier(g, disconnected, eps=10.0, backend=backend)
            assert relative_condition_number(g, disconnected, backend=backend) == np.inf

    def test_vertex_set_mismatch_raises(self):
        with pytest.raises(ValueError, match="vertex set"):
            spectral_approximation_factor(
                generators.path_graph(5), generators.path_graph(6), backend="sparse"
            )


class TestPencilHelper:
    def test_pencil_extremes_match_dense_reference(self):
        g = generators.grid_graph(10, 10)
        result = spectral_sparsify(g, eps=0.5, seed=2, t_override=2)
        lo, hi = sparse_backend.pencil_extreme_eigenvalues(g, result.sparsifier)
        dense = spectral_approximation_factor(g, result.sparsifier, backend="dense")
        np.testing.assert_allclose((lo, hi), dense, rtol=1e-8, atol=1e-8)

    def test_certify_backend_kwarg(self):
        g = generators.random_weighted_graph(70, average_degree=8, seed=6)
        result = spectral_sparsify(g, eps=0.5, seed=12, t_override=2)
        assert result.certify(g, eps=2.0, backend="dense") == result.certify(
            g, eps=2.0, backend="sparse"
        )
