"""Lewis weights in graph mode against a resident serving-tier oracle."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import generators
from repro.linalg.lewis import compute_apx_weights
from repro.linalg.resistance import SketchedResistanceOracle
from repro.linalg.sparse_backend import incidence_csr


@pytest.fixture
def graph():
    return generators.random_weighted_graph(14, average_degree=4, seed=9)


def weighted_incidence(graph):
    B, w = incidence_csr(graph)
    return np.asarray((sp.diags(np.sqrt(w)) @ B).todense())


class TestOracleBackedLewisWeights:
    @pytest.mark.parametrize("p", [1.0, 1.5])
    def test_resident_oracle_agrees_with_exact_matrix_path(self, graph, p):
        eta = 1e-2
        reference = compute_apx_weights(
            M=weighted_incidence(graph), p=p, eta=eta, use_sketching=False, seed=0
        ).weights
        oracle = SketchedResistanceOracle(graph, eta=0.3, k_override=graph.m)
        assert oracle.exact  # identity sketch: exact answers, any eta honoured
        served = compute_apx_weights(
            graph=graph,
            resistance_oracle=oracle,
            p=p,
            eta=eta,
            use_sketching=False,
            seed=0,
        ).weights
        # both runs promise a multiplicative eta approximation of the true
        # Lewis weights, so they agree within the eta contract
        assert np.max(np.abs(served - reference) / reference) <= eta

    def test_graph_mode_without_oracle_matches_matrix_path(self, graph):
        eta = 1e-2
        reference = compute_apx_weights(
            M=weighted_incidence(graph), p=1.0, eta=eta, use_sketching=False, seed=0
        ).weights
        graph_mode = compute_apx_weights(
            graph=graph, p=1.0, eta=eta, use_sketching=False, seed=0
        ).weights
        assert np.max(np.abs(graph_mode - reference) / reference) <= eta

    def test_loose_oracle_rejected_up_front(self, graph):
        # a genuinely sketched oracle whose guarantee (eta_effective = 0.3)
        # is looser than the per-iteration leverage accuracy min(1/2, eta/4)
        oracle = SketchedResistanceOracle(graph, eta=0.3, k_override=4)
        assert not oracle.exact
        assert oracle.eta_effective == 0.3
        with pytest.raises(ValueError, match="looser"):
            compute_apx_weights(graph=graph, resistance_oracle=oracle, eta=1e-2)

    def test_loose_oracle_accepted_when_eta_budget_allows(self, graph):
        # the same nominal oracle guarantee is fine for a coarse target:
        # eta = 0.9 needs per-iteration accuracy min(1/2, 0.225) > 0.2
        oracle = SketchedResistanceOracle(graph, eta=0.2, seed=0)
        report = compute_apx_weights(
            graph=graph, resistance_oracle=oracle, eta=0.9, seed=0
        )
        assert report.iterations > 0
        assert np.all(report.weights > 0)

    def test_shared_oracle_is_consumed_not_rebuilt(self, graph, monkeypatch):
        # uniform iterates must read off the resident oracle; constructing a
        # fresh SketchedResistanceOracle for the base graph would re-pay the
        # k embedding solves the serving layer already holds
        oracle = SketchedResistanceOracle(graph, eta=0.3, k_override=graph.m)
        calls = {"count": 0}
        original_init = SketchedResistanceOracle.__init__

        def counting_init(self, *args, **kwargs):
            calls["count"] += 1
            return original_init(self, *args, **kwargs)

        monkeypatch.setattr(SketchedResistanceOracle, "__init__", counting_init)
        compute_apx_weights(
            graph=graph,
            resistance_oracle=oracle,
            eta=1e-2,
            use_sketching=False,
            seed=0,
            max_iterations=1,  # the start is uniform: one oracle-served round
        )
        assert calls["count"] == 0
