"""Tests for leverage scores (Algorithm 6, Lemma 4.5)."""

import numpy as np
import pytest

from repro.congest.ledger import CommunicationPrimitives
from repro.graphs import generators, incidence_matrix
from repro.linalg.leverage import approximate_leverage_scores, exact_leverage_scores


class TestExactLeverageScores:
    def test_sum_equals_rank(self):
        rng = np.random.default_rng(0)
        M = rng.normal(size=(40, 7))
        scores = exact_leverage_scores(M)
        assert scores.sum() == pytest.approx(7.0, rel=1e-9)

    def test_scores_in_unit_interval(self):
        rng = np.random.default_rng(1)
        M = rng.normal(size=(30, 5))
        scores = exact_leverage_scores(M)
        assert np.all(scores >= -1e-12)
        assert np.all(scores <= 1 + 1e-12)

    def test_orthonormal_columns_uniform_rows(self):
        Q, _ = np.linalg.qr(np.random.default_rng(2).normal(size=(20, 20)))
        M = Q[:, :4]
        scores = exact_leverage_scores(M)
        np.testing.assert_allclose(scores, np.sum(M * M, axis=1), atol=1e-10)

    def test_incidence_matrix_leverage_equals_effective_resistance(self):
        """For M = W^{1/2} B the leverage score of an edge is w_e * R_eff(e)."""
        from repro.graphs import effective_resistances

        g = generators.random_weighted_graph(12, seed=3)
        B, w = incidence_matrix(g)
        M = np.sqrt(w)[:, None] * B
        scores = exact_leverage_scores(M, ridge=1e-12)
        expected = w * effective_resistances(g)
        # both sides go through a pseudoinverse of a singular Laplacian, so the
        # agreement is limited by its conditioning
        np.testing.assert_allclose(scores, expected, rtol=5e-3, atol=1e-3)


class TestApproximateLeverageScores:
    def test_multiplicative_accuracy(self):
        rng = np.random.default_rng(4)
        M = rng.normal(size=(80, 6))
        exact = exact_leverage_scores(M)
        report = approximate_leverage_scores(M, eta=0.25, seed=5)
        ratio = report.scores / exact
        assert np.all(ratio >= 1 - 0.25 - 0.05)
        assert np.all(ratio <= 1 + 0.25 + 0.05)

    def test_report_contains_cost_metadata(self):
        rng = np.random.default_rng(6)
        M = rng.normal(size=(50, 5))
        report = approximate_leverage_scores(M, eta=0.3, seed=7)
        assert report.sketch_rows >= 1
        assert report.random_bits >= 1
        assert report.solves == report.sketch_rows

    def test_rounds_charged_when_comm_given(self):
        rng = np.random.default_rng(8)
        M = rng.normal(size=(40, 5))
        comm = CommunicationPrimitives(10)
        report = approximate_leverage_scores(M, eta=0.3, seed=9, comm=comm)
        assert report.rounds > 0
        grouped = comm.ledger.rounds_by_operation()
        assert "broadcast_random_bits" in grouped
        assert "laplacian_solve" in grouped

    def test_custom_gram_solver_used(self):
        rng = np.random.default_rng(10)
        M = rng.normal(size=(30, 4))
        calls = []
        gram_pinv = np.linalg.pinv(M.T @ M)

        def solver(y):
            calls.append(1)
            return gram_pinv @ y

        report = approximate_leverage_scores(M, eta=0.4, seed=11, gram_solver=solver)
        assert len(calls) == report.sketch_rows

    def test_validation(self):
        with pytest.raises(ValueError):
            approximate_leverage_scores(np.ones((5, 2)), eta=0.0)
        with pytest.raises(ValueError):
            approximate_leverage_scores(np.ones(5), eta=0.1)
