"""Dense-vs-sparse backend agreement and grounded-solver correctness."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import (
    effective_resistances,
    generators,
    incidence_matrix,
    laplacian_matrix,
    laplacian_quadratic_form,
)
from repro.graphs.graph import WeightedGraph
from repro.linalg.sparse_backend import (
    DENSE_BACKEND_LIMIT,
    GroundedLaplacianSolver,
    as_apply_fn,
    effective_resistances_sparse,
    incidence_csr,
    laplacian_csr,
    laplacian_quadratic_form_vectorized,
    resolve_backend,
)


def reference_graphs():
    """The agreement workloads named by the backend acceptance criteria."""
    barbell = generators.barbell_graph(6, path_length=3)
    weighted = generators.random_weighted_graph(24, average_degree=6, max_weight=16, seed=3)
    return {
        "path": generators.path_graph(12),
        "cycle": generators.cycle_graph(15),
        "grid": generators.grid_graph(5, 6),
        "barbell": barbell,
        "weighted": weighted,
    }


@pytest.fixture(params=sorted(reference_graphs()))
def reference_graph(request):
    return reference_graphs()[request.param]


class TestMatrixAgreement:
    def test_laplacian_csr_matches_dense(self, reference_graph):
        dense = laplacian_matrix(reference_graph, backend="dense")
        sparse = laplacian_matrix(reference_graph, backend="sparse")
        assert sp.issparse(sparse)
        np.testing.assert_allclose(sparse.toarray(), dense, atol=1e-12)

    def test_incidence_csr_matches_dense(self, reference_graph):
        B_dense, w_dense = incidence_matrix(reference_graph, backend="dense")
        B_sparse, w_sparse = incidence_matrix(reference_graph, backend="sparse")
        assert sp.issparse(B_sparse)
        np.testing.assert_allclose(B_sparse.toarray(), B_dense, atol=1e-12)
        np.testing.assert_allclose(w_sparse, w_dense, atol=1e-12)

    def test_incidence_factorisation(self, reference_graph):
        B, w = incidence_csr(reference_graph)
        L = (B.T @ sp.diags(w) @ B).toarray()
        np.testing.assert_allclose(L, laplacian_matrix(reference_graph), atol=1e-12)

    def test_quadratic_form_agrees(self, reference_graph, rng):
        L = laplacian_matrix(reference_graph)
        for _ in range(5):
            x = rng.normal(size=reference_graph.n)
            expected = float(x @ L @ x)
            assert laplacian_quadratic_form(reference_graph, x) == pytest.approx(expected, abs=1e-8)
            assert laplacian_quadratic_form_vectorized(reference_graph, x) == pytest.approx(
                expected, abs=1e-8
            )


class TestEffectiveResistanceAgreement:
    def test_dense_and_sparse_paths_agree(self, reference_graph):
        dense = effective_resistances(reference_graph, backend="dense")
        sparse = effective_resistances(reference_graph, backend="sparse")
        np.testing.assert_allclose(sparse, dense, atol=1e-8)

    def test_small_batches_cover_all_edges(self, reference_graph):
        full = effective_resistances_sparse(reference_graph)
        batched = effective_resistances_sparse(reference_graph, batch_size=3)
        np.testing.assert_allclose(batched, full, atol=1e-12)

    def test_fosters_theorem_on_sparse_path(self):
        g = generators.random_weighted_graph(30, average_degree=6, seed=9)
        resistances = effective_resistances_sparse(g)
        _, _, w = g.edge_array()
        assert float(np.dot(resistances, w)) == pytest.approx(g.n - 1, rel=1e-6)

    def test_disconnected_graph(self):
        g = WeightedGraph(6)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(3, 4, 4.0)  # vertex 5 isolated
        dense = effective_resistances(g, backend="dense")
        sparse = effective_resistances(g, backend="sparse")
        np.testing.assert_allclose(sparse, dense, atol=1e-10)

    def test_empty_graph(self):
        g = WeightedGraph(4)
        assert effective_resistances(g, backend="sparse").size == 0
        assert effective_resistances(g, backend="dense").size == 0


class TestGroundedSolver:
    def test_matches_pseudoinverse(self, reference_graph, rng):
        L = laplacian_matrix(reference_graph)
        solver = GroundedLaplacianSolver(reference_graph)
        b = rng.normal(size=reference_graph.n)
        b -= b.mean()
        np.testing.assert_allclose(solver.solve(b), np.linalg.pinv(L) @ b, atol=1e-8)

    def test_solve_many_matches_columnwise(self, rng):
        g = generators.grid_graph(4, 5)
        solver = GroundedLaplacianSolver(g)
        B = rng.normal(size=(g.n, 4))
        B -= B.mean(axis=0)
        X = solver.solve_many(B)
        for j in range(B.shape[1]):
            np.testing.assert_allclose(X[:, j], solver.solve(B[:, j]), atol=1e-12)

    def test_disconnected_min_norm(self, rng):
        g = WeightedGraph(7)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 3.0)
        g.add_edge(3, 4, 2.0)
        g.add_edge(4, 5, 1.0)  # vertex 6 isolated
        L = laplacian_matrix(g)
        b = rng.normal(size=7)
        # make b consistent per component
        for component in g.connected_components():
            idx = sorted(component)
            b[idx] -= b[idx].mean()
        solver = GroundedLaplacianSolver(g)
        np.testing.assert_allclose(solver.solve(b), np.linalg.pinv(L) @ b, atol=1e-10)

    def test_rejects_bad_shape(self):
        solver = GroundedLaplacianSolver(generators.path_graph(4))
        with pytest.raises(ValueError):
            solver.solve(np.zeros(5))


class TestBackendSelection:
    def test_explicit_backends(self):
        g = generators.path_graph(4)
        assert resolve_backend(g, "dense") == "dense"
        assert resolve_backend(g, "sparse") == "sparse"

    def test_auto_switches_on_size(self):
        small = generators.path_graph(4)
        large = generators.path_graph(DENSE_BACKEND_LIMIT + 1)
        assert resolve_backend(small, "auto") == "dense"
        assert resolve_backend(large, "auto") == "sparse"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(generators.path_graph(3), "gpu")

    def test_auto_matrix_type_follows_size(self):
        large = generators.path_graph(DENSE_BACKEND_LIMIT + 1)
        assert sp.issparse(laplacian_matrix(large, backend="auto"))
        assert isinstance(laplacian_matrix(large, backend="dense"), np.ndarray)


class TestApplyFnAdapter:
    def test_wraps_matrices_and_passes_callables(self, rng):
        A = rng.normal(size=(5, 5))
        v = rng.normal(size=5)
        np.testing.assert_allclose(as_apply_fn(A)(v), A @ v)
        np.testing.assert_allclose(as_apply_fn(sp.csr_matrix(A))(v), A @ v)
        fn = lambda x: 2 * x  # noqa: E731
        assert as_apply_fn(fn) is fn
