"""Low-rank repair primitives: repaired state == from-scratch rebuild (1e-8).

Covers the three repairable artifact families of the serving layer --
:class:`RepairableGroundedSolver` (Sherman-Morrison on the grounded ``splu``
factorisation), :class:`ResistanceOracle.apply_update` (rank-1 on the stored
grounded inverse) and :class:`SketchedResistanceOracle.append_edge` (embedding
row-append) -- plus the refusal conditions that force a rebuild: bridge
removal, cross-component insertion, exhausted update budgets.
"""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph
from repro.linalg.jl import resistance_sketch_dimension, resistance_sketch_eta
from repro.linalg.resistance import SketchedResistanceOracle
from repro.linalg.sparse_backend import (
    GroundedLaplacianSolver,
    RepairableGroundedSolver,
    ResistanceOracle,
    default_update_budget,
)

TOL = 1e-8


def workloads():
    return [
        ("random", generators.random_weighted_graph(240, average_degree=6, seed=3)),
        ("barabasi-albert", generators.barabasi_albert(240, attach=3, seed=11)),
        ("watts-strogatz", generators.watts_strogatz(240, k=6, beta=0.2, seed=13)),
        ("grid", generators.grid_graph(15, 16)),
    ]


def mutate(graph, rng, ops=("add", "update", "remove")):
    """Apply one random repairable mutation; return (u, v, weight_delta)."""
    op = rng.choice(ops)
    if op == "add":
        while True:
            u, v = (int(x) for x in rng.integers(0, graph.n, 2))
            if u != v and not graph.has_edge(u, v):
                break
        w = float(rng.uniform(0.5, 2.0))
        graph.add_edge(u, v, w)
        return u, v, w
    edges = graph.edge_list()
    u, v, w = edges[int(rng.integers(0, len(edges)))]
    if op == "update":
        new_w = w + float(rng.uniform(0.1, 1.0))
        graph.add_edge(u, v, new_w)
        return u, v, new_w - w
    graph.remove_edge(u, v)
    return u, v, -w


@pytest.mark.parametrize("name,graph", workloads())
def test_repaired_solver_matches_rebuild(name, graph):
    rng = np.random.default_rng(17)
    solver = RepairableGroundedSolver(graph)
    applied = 0
    for _ in range(8):
        u, v, delta = mutate(graph, rng)
        if solver.apply_update(u, v, delta):
            applied += 1
        else:
            # a refused mutation (e.g. a bridge removal on the grid) must
            # leave the solver untouched: undo it on the graph and move on
            if delta < 0 and not graph.has_edge(u, v):
                graph.add_edge(u, v, -delta)
            elif delta > 0 and graph.has_edge(u, v):
                prev = graph.weight(u, v) - delta
                if prev > 0:
                    graph.add_edge(u, v, prev)
                else:
                    graph.remove_edge(u, v)
    assert applied >= 5  # the workloads are dense enough that most ops repair
    fresh = GroundedLaplacianSolver(graph)

    b = rng.normal(size=graph.n)
    b -= b.mean()
    np.testing.assert_allclose(solver.solve(b), fresh.solve(b), atol=TOL)

    B = rng.normal(size=(graph.n, 4))
    B -= B.mean(axis=0)
    np.testing.assert_allclose(solver.solve_many(B), fresh.solve_many(B), atol=TOL)

    pu = rng.integers(0, graph.n, 64)
    pv = rng.integers(0, graph.n, 64)
    np.testing.assert_allclose(
        solver.pair_resistances(pu, pv), fresh.pair_resistances(pu, pv), atol=TOL
    )


def test_bridge_removal_is_refused():
    graph = generators.path_graph(20)
    solver = RepairableGroundedSolver(graph)
    # every path edge is a bridge: the Sherman-Morrison denominator vanishes
    assert not solver.apply_update(5, 6, -1.0)
    assert solver.updates_applied == 0
    # the refusal left the solver serving the unmutated graph exactly
    fresh = GroundedLaplacianSolver(graph)
    b = np.random.default_rng(0).normal(size=graph.n)
    b -= b.mean()
    np.testing.assert_allclose(solver.solve(b), fresh.solve(b), atol=TOL)


def test_near_bridge_removal_is_refused_by_conditioning_guard():
    # two cliques joined by one heavy edge plus one feather-weight edge: the
    # heavy edge carries essentially all of R(u, v), so removing it drives
    # the denominator 1 - w R(u, v) to ~0 even though it is not a cut edge
    graph = generators.barbell_graph(6, 1)
    u, v = 5, 6
    feather = 1e-12
    graph.add_edge(4, 7, feather)
    solver = RepairableGroundedSolver(graph)
    assert not solver.apply_update(u, v, -graph.weight(u, v))


def test_cross_component_insertion_is_refused():
    graph = WeightedGraph(6, edges=[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
    solver = RepairableGroundedSolver(graph)
    assert not solver.apply_update(2, 3, 1.0)  # would merge the components
    assert solver.apply_update(0, 2, 1.0)  # within-component add is fine


def test_update_budget_forces_refusal():
    graph = generators.random_weighted_graph(64, average_degree=6, seed=1)
    solver = RepairableGroundedSolver(graph, max_updates=3)
    rng = np.random.default_rng(2)
    accepted = 0
    for _ in range(5):
        u, v, delta = mutate(graph, rng, ops=("add",))
        if solver.apply_update(u, v, delta):
            accepted += 1
    assert accepted == 3
    assert solver.update_budget_remaining == 0
    assert default_update_budget(10_000) == 100  # the O(sqrt(n)) default


def test_repaired_solver_nbytes_accounts_for_updates():
    graph = generators.grid_graph(8, 8)
    solver = RepairableGroundedSolver(graph)
    base = solver.nbytes()
    assert solver.apply_update(0, 9, 1.0)
    assert solver.nbytes() > base


@pytest.mark.parametrize("name,graph", workloads())
def test_dense_oracle_repair_matches_rebuild(name, graph):
    rng = np.random.default_rng(23)
    oracle = ResistanceOracle(graph)
    applied = 0
    for _ in range(6):
        u, v, delta = mutate(graph, rng, ops=("add", "update"))
        assert oracle.apply_update(u, v, delta)
        applied += 1
    assert oracle.repairs_applied == applied
    fresh = ResistanceOracle(graph)
    pu = rng.integers(0, graph.n, 64)
    pv = rng.integers(0, graph.n, 64)
    np.testing.assert_allclose(
        oracle.pair_resistances(pu, pv), fresh.pair_resistances(pu, pv), atol=TOL
    )


def test_dense_oracle_refusals():
    graph = WeightedGraph(4, edges=[(0, 1, 1.0), (2, 3, 1.0)])
    oracle = ResistanceOracle(graph)
    assert not oracle.apply_update(1, 2, 1.0)  # cross-component
    path = generators.path_graph(6)
    path_oracle = ResistanceOracle(path)
    assert not path_oracle.apply_update(2, 3, -1.0)  # bridge removal
    budget = ResistanceOracle(generators.grid_graph(4, 4))
    budget.max_updates = 1
    assert budget.apply_update(0, 5, 1.0)
    assert not budget.apply_update(1, 6, 1.0)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: generators.random_weighted_graph(400, average_degree=8, seed=5),
        lambda: generators.barabasi_albert(400, attach=4, seed=7),
        lambda: generators.watts_strogatz(400, k=8, beta=0.2, seed=9),
        lambda: generators.grid_graph(20, 20),
    ],
)
def test_sketched_append_respects_eta_on_all_pairs(factory):
    graph = factory()
    eta = 0.5
    grounded = RepairableGroundedSolver(graph)
    oracle = SketchedResistanceOracle(graph, eta=eta, seed=0, grounded=grounded)
    assert not oracle.exact  # the workloads are big enough to actually sketch
    rng = np.random.default_rng(31)
    for _ in range(4):
        u, v, w = mutate(graph, rng, ops=("add",))
        assert grounded.apply_update(u, v, w)
        assert oracle.append_edge(u, v, w, grounded)
    assert oracle.appended == 4
    exact = GroundedLaplacianSolver(graph)
    pu = rng.integers(0, graph.n, 512)
    pv = rng.integers(0, graph.n, 512)
    truth = exact.pair_resistances(pu, pv)
    approx = oracle.pair_resistances(pu, pv)
    positive = np.isfinite(truth) & (truth > 0)
    rel = np.abs(approx[positive] - truth[positive]) / truth[positive]
    assert rel.max() <= oracle.eta_effective
    np.testing.assert_array_equal(approx[pu == pv], 0.0)


def test_sketched_append_exact_mode_stays_exact():
    graph = generators.path_graph(12)  # k >= m: identity sketch
    grounded = RepairableGroundedSolver(graph)
    oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0, grounded=grounded)
    assert oracle.exact
    k_before = oracle.k
    graph.add_edge(0, 7, 1.3)
    assert grounded.apply_update(0, 7, 1.3)
    assert oracle.append_edge(0, 7, 1.3, grounded)
    assert oracle.exact and oracle.k == k_before + 1
    assert oracle.eta_effective == 0.0
    fresh = GroundedLaplacianSolver(graph)
    pu = np.arange(graph.n - 1)
    pv = np.arange(1, graph.n)
    np.testing.assert_allclose(
        oracle.pair_resistances(pu, pv), fresh.pair_resistances(pu, pv), atol=TOL
    )


def test_sketched_append_refuses_cross_component():
    graph = WeightedGraph(8, edges=[(0, 1, 1.0), (1, 2, 1.0), (4, 5, 1.0), (5, 6, 1.0)])
    grounded = RepairableGroundedSolver(graph)
    oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0, grounded=grounded)
    assert not oracle.append_edge(2, 4, 1.0, grounded)
    assert oracle.appended == 0


class TestSplitRegrounding:
    """Bridge removals with ``split_side``: re-ground instead of refusing."""

    @pytest.mark.parametrize("side_of", ["u", "v"])
    def test_split_removal_matches_fresh_factorisation(self, side_of):
        graph = generators.path_graph(30)
        solver = RepairableGroundedSolver(graph)
        graph.remove_edge(12, 13)
        side = set(range(13)) if side_of == "u" else set(range(13, 30))
        assert solver.apply_update(12, 13, -1.0, split_side=side)
        assert solver.updates_applied == 2  # regulariser + removal
        fresh = GroundedLaplacianSolver(graph)
        rng = np.random.default_rng(41)
        pu = rng.integers(0, graph.n, 128)
        pv = rng.integers(0, graph.n, 128)
        truth = fresh.pair_resistances(pu, pv)
        assert np.any(np.isinf(truth))  # the probe really crosses the split
        np.testing.assert_allclose(
            solver.pair_resistances(pu, pv), truth, atol=TOL
        )

    def test_split_removal_composes_with_later_updates(self):
        graph = generators.path_graph(24)
        solver = RepairableGroundedSolver(graph)
        graph.remove_edge(10, 11)
        assert solver.apply_update(10, 11, -1.0, split_side=set(range(11, 24)))
        # keep mutating on both sides of the split: a within-component add
        # and a reweight, absorbed as ordinary rank-1 updates
        graph.add_edge(2, 8, 1.5)
        assert solver.apply_update(2, 8, 1.5)
        graph.add_edge(15, 16, 3.0)  # was 1.0
        assert solver.apply_update(15, 16, 2.0)
        fresh = GroundedLaplacianSolver(graph)
        pu = np.arange(graph.n - 1)
        pv = np.arange(1, graph.n)
        np.testing.assert_allclose(
            solver.pair_resistances(pu, pv), fresh.pair_resistances(pu, pv), atol=TOL
        )

    def test_split_needs_two_slots(self):
        graph = generators.path_graph(12)
        solver = RepairableGroundedSolver(graph, max_updates=1)
        assert not solver.apply_update(5, 6, -1.0, split_side=set(range(6, 12)))
        assert solver.updates_applied == 0

    def test_non_bridge_removal_ignores_split_side(self):
        graph = generators.grid_graph(6, 6)  # every edge sits on a cycle
        solver = RepairableGroundedSolver(graph)
        w = graph.weight(0, 1)
        graph.remove_edge(0, 1)
        # split_side offered but the rank-1 path succeeds: one slot, no
        # regulariser, and still exact
        assert solver.apply_update(0, 1, -w, split_side={0})
        assert solver.updates_applied == 1
        fresh = GroundedLaplacianSolver(graph)
        rng = np.random.default_rng(43)
        pu = rng.integers(0, graph.n, 64)
        pv = rng.integers(0, graph.n, 64)
        np.testing.assert_allclose(
            solver.pair_resistances(pu, pv), fresh.pair_resistances(pu, pv), atol=TOL
        )


class TestSketchRepairEdge:
    """Reweights/removals repair the column in place; eta does not widen."""

    def test_reweight_and_removal_stay_within_eta(self):
        graph = generators.random_weighted_graph(400, average_degree=8, seed=5)
        grounded = RepairableGroundedSolver(graph)
        oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0, grounded=grounded)
        assert not oracle.exact
        eta_built = oracle.eta_effective

        u, v, w = graph.edge_list()[7]
        graph.add_edge(u, v, w + 1.3)
        assert grounded.apply_update(u, v, 1.3)
        assert oracle.repair_edge(u, v, w, w + 1.3, grounded)

        ru, rv, rw = graph.edge_list()[19]
        graph.remove_edge(ru, rv)
        assert grounded.apply_update(ru, rv, -rw)
        assert oracle.repair_edge(ru, rv, rw, 0.0, grounded)

        assert oracle.reweighted == 1 and oracle.removed == 1
        # the mixed contract: only insertions widen the bound
        assert oracle.eta_effective == eta_built

        exact = GroundedLaplacianSolver(graph)
        rng = np.random.default_rng(47)
        pu = rng.integers(0, graph.n, 512)
        pv = rng.integers(0, graph.n, 512)
        truth = exact.pair_resistances(pu, pv)
        approx = oracle.pair_resistances(pu, pv)
        positive = np.isfinite(truth) & (truth > 0)
        rel = np.abs(approx[positive] - truth[positive]) / truth[positive]
        assert rel.max() <= oracle.eta_effective

    def test_retired_column_refuses_further_repair(self):
        graph = generators.grid_graph(20, 20)
        grounded = RepairableGroundedSolver(graph)
        oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0, grounded=grounded)
        u, v, w = graph.edge_list()[3]
        graph.remove_edge(u, v)
        assert grounded.apply_update(u, v, -w)
        assert oracle.repair_edge(u, v, w, 0.0, grounded)
        # the column is retired: further repairs of the same edge must not
        # resurrect it through the repair path (the serving layer re-inserts
        # via append_edge with a fresh column instead)
        assert not oracle.repair_edge(u, v, w, 2.0 * w, grounded)
        assert oracle.removed == 1 and oracle.reweighted == 0

    def test_exact_mode_repair_matches_fresh(self):
        graph = generators.grid_graph(4, 4)  # small enough for identity sketch
        grounded = RepairableGroundedSolver(graph)
        oracle = SketchedResistanceOracle(graph, eta=0.5, seed=0, grounded=grounded)
        assert oracle.exact
        u, v, w = graph.edge_list()[5]
        graph.add_edge(u, v, w + 0.7)
        assert grounded.apply_update(u, v, 0.7)
        assert oracle.repair_edge(u, v, w, w + 0.7, grounded)
        assert oracle.eta_effective == 0.0
        fresh = GroundedLaplacianSolver(graph)
        rng = np.random.default_rng(53)
        pu = rng.integers(0, graph.n, 64)
        pv = rng.integers(0, graph.n, 64)
        np.testing.assert_allclose(
            oracle.pair_resistances(pu, pv), fresh.pair_resistances(pu, pv), atol=TOL
        )


def test_eta_effective_widens_with_ambient_dimension():
    m = 5000
    eta = 0.25
    k = resistance_sketch_dimension(m, eta)
    # the inverse is consistent: at the built ambient dimension the bound is
    # no looser than eta, and it is monotone in the ambient dimension
    at_build = resistance_sketch_eta(k, m)
    assert at_build is not None and at_build <= eta
    widened = resistance_sketch_eta(k, 2 * m)
    assert widened is not None and widened >= at_build
    assert resistance_sketch_dimension(2 * m, widened) <= k
    # a hopeless k honours no bound at all
    assert resistance_sketch_eta(1, 10**9) is None
