"""Tests for the Johnson-Lindenstrauss transforms (Theorem 4.4)."""

import numpy as np
import pytest

from repro.linalg.jl import (
    achlioptas_matrix,
    jl_sketch_dimension,
    kane_nelson_matrix,
    kane_nelson_random_bits,
    kane_nelson_sketch,
    resistance_sketch_dimension,
    sample_kane_nelson,
    sketch_preserves_norm,
)


class TestDimensions:
    def test_sketch_dimension_scales_with_eta(self):
        assert jl_sketch_dimension(1000, 0.1) > jl_sketch_dimension(1000, 0.5)

    def test_random_bits_polylogarithmic(self):
        bits = kane_nelson_random_bits(10**6)
        assert bits <= 10 * np.log2(10**6) ** 2

    def test_validation(self):
        with pytest.raises(ValueError):
            jl_sketch_dimension(100, 0.0)
        with pytest.raises(ValueError):
            achlioptas_matrix(0, 5)
        with pytest.raises(ValueError):
            kane_nelson_matrix(0, 5, 1)


class TestAchlioptas:
    def test_entries_are_scaled_signs(self):
        Q = achlioptas_matrix(8, 20, seed=1)
        assert Q.shape == (8, 20)
        np.testing.assert_allclose(np.abs(Q), 1 / np.sqrt(8))

    def test_norm_preservation_statistics(self):
        rng = np.random.default_rng(2)
        k = jl_sketch_dimension(200, 0.5)
        Q = achlioptas_matrix(min(k, 200), 200, seed=3)
        hits = sum(
            sketch_preserves_norm(Q, rng.normal(size=200), 0.5) for _ in range(50)
        )
        assert hits >= 45  # the distortion bound holds for the vast majority


class TestKaneNelson:
    def test_deterministic_given_seed(self):
        A = kane_nelson_matrix(16, 40, seed_bits=12345)
        B = kane_nelson_matrix(16, 40, seed_bits=12345)
        np.testing.assert_array_equal(A, B)

    def test_different_seeds_differ(self):
        A = kane_nelson_matrix(16, 40, seed_bits=1)
        B = kane_nelson_matrix(16, 40, seed_bits=2)
        assert not np.array_equal(A, B)

    def test_column_sparsity(self):
        Q = kane_nelson_matrix(25, 30, seed_bits=7, column_sparsity=5)
        nnz_per_column = np.count_nonzero(Q, axis=0)
        assert np.all(nnz_per_column == 5)

    def test_column_norms_are_one(self):
        Q = kane_nelson_matrix(25, 30, seed_bits=9)
        np.testing.assert_allclose(np.linalg.norm(Q, axis=0), 1.0, atol=1e-12)

    def test_norm_preservation_statistics(self):
        rng = np.random.default_rng(4)
        m = 300
        Q, k, _seed = sample_kane_nelson(m, eta=0.5, seed=5)
        assert k == jl_sketch_dimension(m, 0.5)
        hits = sum(
            sketch_preserves_norm(Q, rng.normal(size=m), 0.5) for _ in range(50)
        )
        assert hits >= 40

    def test_zero_vector_preserved(self):
        Q = kane_nelson_matrix(10, 20, seed_bits=3)
        assert sketch_preserves_norm(Q, np.zeros(20), 0.1)

    def test_same_seed_across_vertices(self):
        """Every vertex expanding the broadcast seed gets the SAME matrix.

        Simulate independent vertices by expanding the seed from fresh
        processes of the construction, interleaved with unrelated RNG
        activity -- the expansion must depend on nothing but the seed.
        """
        seed_bits = 0xBEEF
        first = kane_nelson_matrix(12, 30, seed_bits=seed_bits)
        np.random.default_rng(99).random(1000)  # unrelated draws, other "vertex"
        second = kane_nelson_matrix(12, 30, seed_bits=seed_bits)
        np.testing.assert_array_equal(first, second)


class TestKaneNelsonSketch:
    """The sparse-format construction used by the sketched resistance oracle."""

    def test_deterministic_given_seed_across_vertices(self):
        A = kane_nelson_sketch(16, 40, seed_bits=12345)
        np.random.default_rng(7).random(512)  # unrelated draws in between
        B = kane_nelson_sketch(16, 40, seed_bits=12345)
        np.testing.assert_array_equal(A.toarray(), B.toarray())

    def test_different_seeds_differ(self):
        A = kane_nelson_sketch(16, 40, seed_bits=1)
        B = kane_nelson_sketch(16, 40, seed_bits=2)
        assert not np.array_equal(A.toarray(), B.toarray())

    def test_shape_contract_matches_dense_construction(self):
        """s distinct nonzeros of +/- 1/sqrt(s) per column, unit column norms."""
        k, m, s = 25, 300, 5
        Q = kane_nelson_sketch(k, m, seed_bits=7, column_sparsity=s).toarray()
        assert Q.shape == (k, m)
        nnz_per_column = np.count_nonzero(Q, axis=0)
        np.testing.assert_array_equal(nnz_per_column, s)
        np.testing.assert_allclose(np.abs(Q[Q != 0]), 1.0 / np.sqrt(s))
        np.testing.assert_allclose(np.linalg.norm(Q, axis=0), 1.0, atol=1e-12)

    def test_default_column_sparsity_is_sqrt_k(self):
        Q = kane_nelson_sketch(25, 30, seed_bits=9).toarray()
        np.testing.assert_array_equal(np.count_nonzero(Q, axis=0), 5)

    def test_sparsity_clamped_to_k(self):
        Q = kane_nelson_sketch(3, 10, seed_bits=2, column_sparsity=50).toarray()
        np.testing.assert_array_equal(np.count_nonzero(Q, axis=0), 3)

    def test_norm_preservation_statistics(self):
        rng = np.random.default_rng(4)
        m = 300
        k = resistance_sketch_dimension(m, 0.5)
        Q = kane_nelson_sketch(min(k, m), m, seed_bits=11)
        squared_ratios = []
        for _ in range(50):
            x = rng.normal(size=m)
            squared_ratios.append(
                np.sum((Q @ x) ** 2) / np.sum(x ** 2)
            )
        # the squared-norm form is what the resistance oracle relies on
        assert np.mean(np.abs(np.asarray(squared_ratios) - 1.0) <= 0.5) >= 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            kane_nelson_sketch(0, 5, 1)
        with pytest.raises(ValueError):
            kane_nelson_sketch(5, 0, 1)


class TestResistanceSketchDimension:
    def test_scales_with_eta(self):
        assert resistance_sketch_dimension(1000, 0.1) > resistance_sketch_dimension(1000, 0.5)

    def test_scales_with_delta(self):
        assert resistance_sketch_dimension(1000, 0.5, delta=1e-12) > (
            resistance_sketch_dimension(1000, 0.5, delta=1e-3)
        )

    def test_grows_logarithmically_in_m(self):
        small = resistance_sketch_dimension(100, 0.5)
        large = resistance_sketch_dimension(10**6, 0.5)
        assert small < large <= 4 * small

    def test_validation(self):
        for bad_eta in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                resistance_sketch_dimension(100, bad_eta)
        with pytest.raises(ValueError):
            resistance_sketch_dimension(100, 0.5, delta=0.0)
