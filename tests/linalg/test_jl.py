"""Tests for the Johnson-Lindenstrauss transforms (Theorem 4.4)."""

import numpy as np
import pytest

from repro.linalg.jl import (
    achlioptas_matrix,
    jl_sketch_dimension,
    kane_nelson_matrix,
    kane_nelson_random_bits,
    sample_kane_nelson,
    sketch_preserves_norm,
)


class TestDimensions:
    def test_sketch_dimension_scales_with_eta(self):
        assert jl_sketch_dimension(1000, 0.1) > jl_sketch_dimension(1000, 0.5)

    def test_random_bits_polylogarithmic(self):
        bits = kane_nelson_random_bits(10**6)
        assert bits <= 10 * np.log2(10**6) ** 2

    def test_validation(self):
        with pytest.raises(ValueError):
            jl_sketch_dimension(100, 0.0)
        with pytest.raises(ValueError):
            achlioptas_matrix(0, 5)
        with pytest.raises(ValueError):
            kane_nelson_matrix(0, 5, 1)


class TestAchlioptas:
    def test_entries_are_scaled_signs(self):
        Q = achlioptas_matrix(8, 20, seed=1)
        assert Q.shape == (8, 20)
        np.testing.assert_allclose(np.abs(Q), 1 / np.sqrt(8))

    def test_norm_preservation_statistics(self):
        rng = np.random.default_rng(2)
        k = jl_sketch_dimension(200, 0.5)
        Q = achlioptas_matrix(min(k, 200), 200, seed=3)
        hits = sum(
            sketch_preserves_norm(Q, rng.normal(size=200), 0.5) for _ in range(50)
        )
        assert hits >= 45  # the distortion bound holds for the vast majority


class TestKaneNelson:
    def test_deterministic_given_seed(self):
        A = kane_nelson_matrix(16, 40, seed_bits=12345)
        B = kane_nelson_matrix(16, 40, seed_bits=12345)
        np.testing.assert_array_equal(A, B)

    def test_different_seeds_differ(self):
        A = kane_nelson_matrix(16, 40, seed_bits=1)
        B = kane_nelson_matrix(16, 40, seed_bits=2)
        assert not np.array_equal(A, B)

    def test_column_sparsity(self):
        Q = kane_nelson_matrix(25, 30, seed_bits=7, column_sparsity=5)
        nnz_per_column = np.count_nonzero(Q, axis=0)
        assert np.all(nnz_per_column == 5)

    def test_column_norms_are_one(self):
        Q = kane_nelson_matrix(25, 30, seed_bits=9)
        np.testing.assert_allclose(np.linalg.norm(Q, axis=0), 1.0, atol=1e-12)

    def test_norm_preservation_statistics(self):
        rng = np.random.default_rng(4)
        m = 300
        Q, k, _seed = sample_kane_nelson(m, eta=0.5, seed=5)
        assert k == jl_sketch_dimension(m, 0.5)
        hits = sum(
            sketch_preserves_norm(Q, rng.normal(size=m), 0.5) for _ in range(50)
        )
        assert hits >= 40

    def test_zero_vector_preserved(self):
        Q = kane_nelson_matrix(10, 20, seed_bits=3)
        assert sketch_preserves_norm(Q, np.zeros(20), 0.1)
