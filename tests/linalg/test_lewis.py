"""Tests for ell_p Lewis weights (Definition 4.3, Algorithms 7-8, Lemma 4.6)."""

import numpy as np
import pytest

from repro.linalg.leverage import exact_leverage_scores
from repro.linalg.lewis import (
    apx_weight_iteration_count,
    compute_apx_weights,
    compute_initial_weights,
    exact_lewis_weights,
    initial_weight_iteration_count,
    lewis_p_parameter,
    lewis_regularisation,
    regularized_lewis_weights,
)


@pytest.fixture(scope="module")
def tall_matrix():
    return np.random.default_rng(0).normal(size=(50, 6))


class TestExactLewisWeights:
    def test_p2_equals_leverage_scores(self, tall_matrix):
        w = exact_lewis_weights(tall_matrix, p=2.0)
        np.testing.assert_allclose(w, exact_leverage_scores(tall_matrix), atol=1e-8)

    def test_fixed_point_property(self, tall_matrix):
        p = lewis_p_parameter(tall_matrix.shape[0])
        w = exact_lewis_weights(tall_matrix, p)
        reweighted = (w ** (0.5 - 1.0 / p))[:, None] * tall_matrix
        np.testing.assert_allclose(w, exact_leverage_scores(reweighted), rtol=1e-6)

    def test_sum_equals_dimension(self, tall_matrix):
        p = 1.2
        w = exact_lewis_weights(tall_matrix, p)
        assert w.sum() == pytest.approx(tall_matrix.shape[1], rel=1e-4)

    def test_positive(self, tall_matrix):
        w = exact_lewis_weights(tall_matrix, 1.5)
        assert np.all(w > 0)

    def test_invalid_p(self, tall_matrix):
        with pytest.raises(ValueError):
            exact_lewis_weights(tall_matrix, 5.0)

    def test_regularized_weights_floor(self, tall_matrix):
        m, n = tall_matrix.shape
        g = regularized_lewis_weights(tall_matrix)
        assert np.all(g >= lewis_regularisation(m, n))


class TestParameters:
    def test_p_parameter_close_to_one(self):
        assert 0.8 < lewis_p_parameter(100) < 1.0
        assert lewis_p_parameter(10**6) > lewis_p_parameter(10)

    def test_iteration_counts_positive(self):
        assert apx_weight_iteration_count(1.0, 100, 0.1) >= 1
        assert initial_weight_iteration_count(100, 400, 1.0) >= 1

    def test_initial_homotopy_scales_with_sqrt_n(self):
        assert initial_weight_iteration_count(400, 1000, 1.0) >= 1.9 * initial_weight_iteration_count(
            100, 1000, 1.0
        )


class TestApproximateWeights:
    @pytest.mark.parametrize("p", [1.0, 1.5, 2.0])
    def test_accuracy_against_exact(self, tall_matrix, p):
        exact = exact_lewis_weights(tall_matrix, p)
        report = compute_apx_weights(tall_matrix, p, eta=0.05, seed=1, use_sketching=False)
        rel = np.max(np.abs(report.weights - exact) / exact)
        assert rel <= 0.05 + 1e-6

    def test_sketched_variant_close(self, tall_matrix):
        p = lewis_p_parameter(tall_matrix.shape[0])
        exact = exact_lewis_weights(tall_matrix, p)
        report = compute_apx_weights(tall_matrix, p, eta=0.1, seed=2, use_sketching=True)
        rel = np.max(np.abs(report.weights - exact) / exact)
        assert rel <= 0.2

    def test_warm_start_respected(self, tall_matrix):
        p = 1.3
        exact = exact_lewis_weights(tall_matrix, p)
        report = compute_apx_weights(
            tall_matrix, p, w0=exact.copy(), eta=0.01, seed=3, use_sketching=False
        )
        rel = np.max(np.abs(report.weights - exact) / exact)
        assert rel <= 0.01

    def test_validation(self, tall_matrix):
        with pytest.raises(ValueError):
            compute_apx_weights(tall_matrix, 5.0)
        with pytest.raises(ValueError):
            compute_apx_weights(tall_matrix, 1.0, w0=np.zeros(tall_matrix.shape[0]))

    def test_iteration_budget_respected(self, tall_matrix):
        report = compute_apx_weights(
            tall_matrix, 1.0, eta=0.1, seed=4, use_sketching=False, max_iterations=2
        )
        assert report.iterations <= 2


class TestInitialWeights:
    def test_direct_route_accuracy(self, tall_matrix):
        p = lewis_p_parameter(tall_matrix.shape[0])
        exact = exact_lewis_weights(tall_matrix, p)
        report = compute_initial_weights(tall_matrix, eta=0.05, seed=5)
        rel = np.max(np.abs(report.weights - exact) / exact)
        assert rel <= 0.1

    def test_faithful_homotopy_on_tiny_instance(self):
        M = np.random.default_rng(6).normal(size=(12, 3))
        p = lewis_p_parameter(12)
        exact = exact_lewis_weights(M, p)
        report = compute_initial_weights(M, eta=0.05, seed=7, faithful=True)
        rel = np.max(np.abs(report.weights - exact) / exact)
        assert rel <= 0.15
        assert report.iterations > 0
