"""Tests for the LP problem container and the robust barrier IPM."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.congest.ledger import CommunicationPrimitives
from repro.lp import BarrierIPM, LPProblem
from repro.lp.barrier_ipm import (
    theoretical_iteration_bound_sqrt_m,
    theoretical_iteration_bound_sqrt_n,
)


def random_box_lp(m, n, seed=0):
    """A random LP with box [0,1] and a known interior point."""
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m, n))
    x_interior = rng.uniform(0.3, 0.7, size=m)
    b = A.T @ x_interior
    c = rng.normal(size=m)
    problem = LPProblem(A=A, b=b, c=c, lower=np.zeros(m), upper=np.ones(m))
    return problem, x_interior


def scipy_optimum(problem):
    result = linprog(
        problem.c,
        A_eq=problem.A.T,
        b_eq=problem.b,
        bounds=list(zip(problem.lower, problem.upper)),
        method="highs",
    )
    assert result.success
    return result.fun


class TestLPProblem:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LPProblem(np.ones((4, 2)), np.ones(3), np.ones(4), np.zeros(4), np.ones(4))
        with pytest.raises(ValueError):
            LPProblem(np.ones((4, 2)), np.ones(2), np.ones(3), np.zeros(4), np.ones(4))

    def test_feasibility_checks(self):
        problem, x0 = random_box_lp(10, 3, seed=1)
        assert problem.is_strictly_feasible(x0)
        assert problem.is_feasible(x0)
        assert not problem.is_feasible(np.full(10, 2.0))

    def test_objective_and_residual(self):
        problem, x0 = random_box_lp(8, 2, seed=2)
        assert problem.objective(x0) == pytest.approx(float(problem.c @ x0))
        np.testing.assert_allclose(problem.equality_residual(x0), 0.0, atol=1e-10)

    def test_bound_parameter_positive(self):
        problem, x0 = random_box_lp(8, 2, seed=3)
        assert problem.bound_parameter(x0) >= 1.0

    def test_gram_solver_default_and_custom(self):
        problem, _ = random_box_lp(8, 3, seed=4)
        d = np.ones(8)
        rhs = np.ones(3)
        default = problem.solve_gram(d, rhs)
        np.testing.assert_allclose(problem.A.T @ (d[:, None] * problem.A) @ default, rhs, atol=1e-6)

        calls = []

        def custom(dd, r):
            calls.append(1)
            return np.zeros_like(r)

        problem.gram_solver = custom
        problem.solve_gram(d, rhs)
        assert calls


class TestBarrierIPM:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy_optimum(self, seed):
        problem, x0 = random_box_lp(25, 5, seed=seed)
        reference = scipy_optimum(problem)
        solution = BarrierIPM(problem).solve(x0, eps=1e-7)
        assert solution.converged
        assert solution.objective == pytest.approx(reference, abs=1e-3)
        assert problem.is_feasible(solution.x, tol=1e-5)

    def test_tighter_eps_gets_closer(self):
        problem, x0 = random_box_lp(20, 4, seed=5)
        reference = scipy_optimum(problem)
        loose = BarrierIPM(problem).solve(x0, eps=1e-2)
        tight = BarrierIPM(problem).solve(x0, eps=1e-8)
        assert abs(tight.objective - reference) <= abs(loose.objective - reference) + 1e-9

    def test_duality_gap_bound_reported(self):
        problem, x0 = random_box_lp(15, 3, seed=6)
        solution = BarrierIPM(problem).solve(x0, eps=1e-4)
        assert solution.duality_gap is not None
        assert solution.duality_gap <= 1e-4 * 1.01

    def test_requires_strictly_feasible_start(self):
        problem, _ = random_box_lp(10, 3, seed=7)
        with pytest.raises(ValueError, match="strictly feasible"):
            BarrierIPM(problem).solve(np.zeros(10))

    def test_rounds_charged_with_comm(self):
        problem, x0 = random_box_lp(12, 3, seed=8)
        comm = CommunicationPrimitives(6)
        solution = BarrierIPM(problem, comm=comm).solve(x0, eps=1e-4)
        assert solution.rounds > 0
        assert comm.ledger.rounds_by_operation()["laplacian_solve"] > 0

    def test_iteration_bounds_helpers(self):
        assert theoretical_iteration_bound_sqrt_m(100, 1e-3) > theoretical_iteration_bound_sqrt_n(
            10, 2.0, 1e-3
        )
