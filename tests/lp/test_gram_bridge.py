"""Gram structure detection and the cached Gram solver bridge (Lemma 5.1)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.flow.lp_formulation import build_fixed_value_lp, build_flow_lp
from repro.graphs import generators
from repro.lp.gram import (
    GramFactorisation,
    GramSolverBridge,
    IncidenceStructure,
    _DenseGramSolver,
    _IncidenceGramSolver,
    default_gram_solver,
    detect_incidence_structure,
    flow_gram_structure,
)
from repro.serve import ArtifactCache


@pytest.fixture
def network():
    return generators.random_flow_network(9, seed=3)


def dense_gram_solve(A, d, rhs):
    A = np.asarray(A.todense()) if sp.issparse(A) else np.asarray(A, dtype=float)
    return np.linalg.solve(A.T @ (d[:, None] * A), rhs)


class TestDetection:
    def test_fixed_value_lp_is_incidence_structured(self, network, rng):
        flow_lp = build_fixed_value_lp(network, flow_value=3.0)
        structure = detect_incidence_structure(flow_lp.problem.A)
        assert structure is not None
        assert structure.n == network.n - 1
        assert structure.m == network.m
        # the compiled reduced matrix IS A^T D A for any positive diagonal
        d = rng.uniform(0.5, 2.0, size=structure.m)
        A = np.asarray(flow_lp.problem.A)
        np.testing.assert_allclose(
            structure.reduced_matrix(structure.aggregate(d)).toarray(),
            A.T @ (d[:, None] * A),
            atol=1e-12,
        )

    def test_section5_lp_is_incidence_structured(self, network, rng):
        flow_lp = build_flow_lp(network, seed=0, perturb=False)
        structure = detect_incidence_structure(flow_lp.problem.A)
        assert structure is not None
        d = rng.uniform(0.5, 2.0, size=structure.m)
        A = np.asarray(flow_lp.problem.A)
        np.testing.assert_allclose(
            structure.reduced_matrix(structure.aggregate(d)).toarray(),
            A.T @ (d[:, None] * A),
            atol=1e-12,
        )

    def test_flow_gram_structure_matches_detection(self, network):
        # byte-identical fingerprints: gram queries compiled straight from the
        # network share cache keys with factorisations made inside flow solves
        fixed = build_fixed_value_lp(network, flow_value=3.0)
        assert (
            flow_gram_structure(network, "fixed-value").fingerprint
            == detect_incidence_structure(fixed.problem.A).fingerprint
        )
        section5 = build_flow_lp(network, seed=0, perturb=False)
        assert (
            flow_gram_structure(network, "section5").fingerprint
            == detect_incidence_structure(section5.problem.A).fingerprint
        )

    def test_sparse_and_dense_matrices_detect_identically(self, network):
        flow_lp = build_fixed_value_lp(network, flow_value=3.0)
        dense = detect_incidence_structure(flow_lp.problem.A)
        sparse = detect_incidence_structure(sp.csr_matrix(flow_lp.problem.A))
        assert dense.fingerprint == sparse.fingerprint

    def test_unknown_formulation_rejected(self, network):
        with pytest.raises(ValueError, match="formulation"):
            flow_gram_structure(network, "newton")

    def test_non_incidence_matrices_return_none(self, rng):
        assert detect_incidence_structure(rng.normal(size=(6, 4))) is None
        # equal-sign pair rows are not incidence rows
        bad = np.zeros((4, 3))
        bad[0, 0] = bad[0, 1] = 1.0
        bad[1, 1] = 1.0
        bad[2, 2] = 1.0
        bad[3, 0] = 1.0
        assert detect_incidence_structure(bad) is None
        # unequal-magnitude opposite-sign rows too
        bad[0, 0], bad[0, 1] = 1.0, -2.0
        assert detect_incidence_structure(bad) is None
        assert detect_incidence_structure(np.zeros((3, 3))) is None

    def test_disconnected_auxiliary_graph_returns_none(self):
        # two difference-rows on disjoint column pairs, no ground rows: the
        # auxiliary graph on 5 vertices is disconnected => A rank-deficient
        A = np.array([[1.0, -1.0, 0.0, 0.0], [0.0, 0.0, 1.0, -1.0]])
        assert detect_incidence_structure(A) is None
        assert (
            IncidenceStructure.from_rows(
                4, np.array([0, 2]), np.array([1, 3])
            )
            is None
        )


class TestBridge:
    def test_strategy_ladder_stays_exact(self, network, rng):
        flow_lp = build_fixed_value_lp(network, flow_value=3.0)
        A = np.asarray(flow_lp.problem.A)
        structure = detect_incidence_structure(A)
        bridge = GramSolverBridge(structure)
        d = rng.uniform(0.5, 2.0, size=structure.m)
        big_mover = d.copy()
        big_mover[0] *= 50.0  # one pair out of band, every other pair untouched
        sequence = [
            d,  # factorise (cold)
            d,  # reuse
            d * (1.0 + 1e-3 * rng.uniform(-1.0, 1.0, size=structure.m)),  # chebyshev
            big_mover,  # rank1 (state is still the factorised d)
            d * rng.uniform(0.1, 10.0, size=structure.m),  # factorise (left the band)
        ]
        for d_step in sequence:
            rhs = rng.normal(size=structure.n)
            np.testing.assert_allclose(
                bridge(d_step, rhs), dense_gram_solve(A, d_step, rhs), atol=1e-8
            )
        strategies = {s for s, _ in bridge.stats.per_solve}
        assert strategies == {"factorise", "reuse", "chebyshev", "rank1"}
        assert bridge.stats.solves == 5

    def test_nonpositive_weights_rejected(self, network):
        structure = flow_gram_structure(network, "fixed-value")
        bridge = GramSolverBridge(structure)
        with pytest.raises(ValueError, match="positive"):
            bridge(np.zeros(structure.m), np.ones(structure.n))

    def test_two_bridges_share_cached_factorisations(self, network, rng):
        structure = flow_gram_structure(network, "fixed-value")
        cache = ArtifactCache()
        d = rng.uniform(0.5, 2.0, size=structure.m)
        rhs = rng.normal(size=structure.n)
        cold = GramSolverBridge(structure, cache=cache, graph_key="g", version=0)
        cold(d, rhs)
        assert cold.stats.factorisations == 1 and cold.stats.cache_hits == 0
        warm = GramSolverBridge(structure, cache=cache, graph_key="g", version=0)
        y = warm(d, rhs)
        assert warm.stats.factorisations == 1 and warm.stats.cache_hits == 1
        np.testing.assert_allclose(y, cold(d, rhs), atol=1e-12)

    def test_cached_factorisation_is_never_mutated_by_overlays(self, network, rng):
        # the rank-1 path must stay bridge-local: a second bridge reading the
        # same cached artifact sees the original weights
        structure = flow_gram_structure(network, "fixed-value")
        cache = ArtifactCache()
        d = rng.uniform(0.5, 2.0, size=structure.m)
        bridge = GramSolverBridge(structure, cache=cache, graph_key="g", version=0)
        bridge(d, rng.normal(size=structure.n))
        d2 = d.copy()
        d2[0] *= 40.0
        bridge(d2, rng.normal(size=structure.n))
        assert bridge.stats.rank1_updates > 0
        artifact = next(
            entry.value for entry in cache.entries() if entry.kind == "gram"
        )
        np.testing.assert_array_equal(artifact.w, structure.aggregate(d))


class TestDefaultGramSolver:
    def test_incidence_sparse_routes_to_grounded_laplacian(self, network):
        flow_lp = build_fixed_value_lp(network, flow_value=3.0, sparse=True)
        assert isinstance(default_gram_solver(flow_lp.problem.A), _IncidenceGramSolver)

    def test_small_dense_incidence_keeps_dense_fallback(self, network):
        flow_lp = build_fixed_value_lp(network, flow_value=3.0)
        assert isinstance(default_gram_solver(flow_lp.problem.A), _DenseGramSolver)

    def test_generic_matrix_keeps_dense_fallback(self, rng):
        assert isinstance(default_gram_solver(rng.normal(size=(8, 5))), _DenseGramSolver)

    @pytest.mark.parametrize("sparse", [False, True])
    def test_fallbacks_agree_with_reference(self, network, rng, sparse):
        flow_lp = build_fixed_value_lp(network, flow_value=3.0, sparse=sparse)
        solver = default_gram_solver(flow_lp.problem.A)
        d = rng.uniform(0.5, 2.0, size=network.m)
        rhs = rng.normal(size=network.n - 1)
        np.testing.assert_allclose(
            solver(d, rhs),
            dense_gram_solve(flow_lp.problem.A, d, rhs),
            atol=1e-8,
        )

    def test_dense_fallback_handles_generic_matrices(self, rng):
        A = rng.normal(size=(12, 5))
        d = rng.uniform(0.5, 2.0, size=12)
        rhs = rng.normal(size=5)
        np.testing.assert_allclose(
            _DenseGramSolver(A)(d, rhs), dense_gram_solve(A, d, rhs), atol=1e-8
        )


class TestFactorisation:
    def test_solve_is_exact_and_accounted(self, network, rng):
        structure = flow_gram_structure(network, "fixed-value")
        w = structure.aggregate(rng.uniform(0.5, 2.0, size=structure.m))
        fact = GramFactorisation(structure, w)
        rhs = rng.normal(size=structure.n)
        np.testing.assert_allclose(
            structure.reduced_matrix(w) @ fact.solve(rhs), rhs, atol=1e-10
        )
        assert fact.nbytes() > 0
