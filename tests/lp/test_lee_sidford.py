"""Tests for the Lee-Sidford weighted path-following solver (Algorithms 9-11)."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.lp import LeeSidfordSolver, LPProblem
from repro.lp.lee_sidford import lee_sidford_constants


def small_lp(m=16, n=3, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(m, n))
    x_interior = rng.uniform(0.35, 0.65, size=m)
    b = A.T @ x_interior
    c = rng.normal(size=m)
    problem = LPProblem(A=A, b=b, c=c, lower=np.zeros(m), upper=np.ones(m))
    return problem, x_interior


def scipy_optimum(problem):
    result = linprog(
        problem.c,
        A_eq=problem.A.T,
        b_eq=problem.b,
        bounds=list(zip(problem.lower, problem.upper)),
        method="highs",
    )
    assert result.success
    return result.fun


class TestConstants:
    def test_paper_constants(self):
        constants = lee_sidford_constants(m=100, n=10)
        assert constants.c_1 == pytest.approx(15.0)
        assert constants.c_s == 4.0
        assert constants.c_k == pytest.approx(2 * np.log(400))
        assert constants.C_norm == pytest.approx(24 * np.sqrt(4 * constants.c_k))
        assert 0 < constants.R < 1
        assert 0 < constants.p < 1
        assert constants.c_0 == pytest.approx(10 / 200)


class TestSolver:
    def test_reweighted_solver_reaches_near_optimum(self):
        problem, x0 = small_lp(seed=1)
        reference = scipy_optimum(problem)
        solver = LeeSidfordSolver(problem, reweight=True, seed=2)
        solution = solver.solve(x0, eps=1e-2)
        assert solution.converged
        assert problem.is_feasible(solution.x, tol=1e-4)
        assert solution.objective <= reference + 1e-2 * (1 + abs(reference))

    def test_unweighted_ablation_also_converges(self):
        problem, x0 = small_lp(seed=3)
        reference = scipy_optimum(problem)
        solver = LeeSidfordSolver(problem, reweight=False, seed=4)
        solution = solver.solve(x0, eps=1e-2)
        assert solution.converged
        assert solution.objective <= reference + 1e-2 * (1 + abs(reference))

    def test_objective_improves_over_start(self):
        problem, x0 = small_lp(seed=5)
        solver = LeeSidfordSolver(problem, reweight=False, seed=6)
        solution = solver.solve(x0, eps=1e-2)
        assert solution.objective < problem.objective(x0)

    def test_requires_interior_start(self):
        problem, _ = small_lp(seed=7)
        solver = LeeSidfordSolver(problem, seed=8)
        with pytest.raises(ValueError, match="strictly feasible"):
            solver.solve(np.zeros(problem.m))

    def test_iteration_bound_scales_with_sqrt_n(self):
        problem, _ = small_lp(m=20, n=4, seed=9)
        solver = LeeSidfordSolver(problem)
        assert solver.iteration_bound(1e-3) < solver.iteration_bound(1e-9)

    def test_report_counts_steps(self):
        problem, x0 = small_lp(seed=10)
        solver = LeeSidfordSolver(problem, reweight=False, seed=11)
        solver.solve(x0, eps=1e-1)
        assert solver.report.path_following_steps > 0
        assert solver.report.centering_steps >= solver.report.path_following_steps
        assert solver.report.gram_solves > 0
