"""Tests for the self-concordant barrier functions (Definition 4.1)."""

import numpy as np
import pytest

from repro.lp.barriers import make_barrier


class TestConstruction:
    def test_rejects_unbounded_coordinates(self):
        with pytest.raises(ValueError):
            make_barrier([-np.inf], [np.inf])

    def test_rejects_empty_boxes(self):
        with pytest.raises(ValueError):
            make_barrier([1.0], [1.0])

    def test_mixed_domains_supported(self):
        barrier = make_barrier([0.0, -np.inf, 0.0], [np.inf, 1.0, 2.0])
        assert barrier.m == 3
        x = np.array([1.0, 0.0, 1.0])
        assert np.all(np.isfinite(barrier.value(x)))


class TestValuesAndDerivatives:
    def test_infinite_outside_domain(self):
        barrier = make_barrier([0.0], [1.0])
        assert barrier.value(np.array([2.0]))[0] == np.inf
        assert barrier.value(np.array([0.5]))[0] < np.inf

    def test_blows_up_near_boundary(self):
        barrier = make_barrier([0.0], [1.0])
        middle = barrier.value(np.array([0.5]))[0]
        near_edge = barrier.value(np.array([1e-9]))[0]
        assert near_edge > middle + 10

    def test_hessian_positive_inside(self):
        barrier = make_barrier([0.0, 0.0, -np.inf], [1.0, np.inf, 5.0])
        x = np.array([0.3, 2.0, 1.0])
        assert np.all(barrier.hessian(x) > 0)

    def test_gradient_matches_finite_differences(self):
        barrier = make_barrier([0.0, 0.0, -np.inf], [1.0, np.inf, 5.0])
        x = np.array([0.37, 1.7, 2.2])
        eps = 1e-6
        for i in range(3):
            up = x.copy()
            down = x.copy()
            up[i] += eps
            down[i] -= eps
            numeric = (barrier.value(up)[i] - barrier.value(down)[i]) / (2 * eps)
            assert barrier.gradient(x)[i] == pytest.approx(numeric, rel=1e-4)

    def test_hessian_matches_finite_differences(self):
        barrier = make_barrier([0.0, -np.inf], [2.0, 1.0])
        x = np.array([0.8, -0.5])
        eps = 1e-6
        for i in range(2):
            up = x.copy()
            down = x.copy()
            up[i] += eps
            down[i] -= eps
            numeric = (barrier.gradient(up)[i] - barrier.gradient(down)[i]) / (2 * eps)
            assert barrier.hessian(x)[i] == pytest.approx(numeric, rel=1e-4)

    def test_trigonometric_barrier_symmetric_about_centre(self):
        barrier = make_barrier([0.0], [2.0])
        left = barrier.value(np.array([0.5]))[0]
        right = barrier.value(np.array([1.5]))[0]
        assert left == pytest.approx(right, rel=1e-9)
        assert barrier.gradient(np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-9)


class TestSelfConcordance:
    @pytest.mark.parametrize(
        "lower,upper,point",
        [
            ([0.0], [np.inf], [1.3]),
            ([-np.inf], [2.0], [0.1]),
            ([0.0], [1.0], [0.42]),
        ],
    )
    def test_definition_4_1_condition_2(self, lower, upper, point):
        barrier = make_barrier(lower, upper)
        assert barrier.self_concordance_check(np.array(point))

    def test_contains_and_centre(self):
        barrier = make_barrier([0.0, 0.0], [1.0, np.inf])
        assert barrier.contains(np.array([0.5, 3.0]))
        assert not barrier.contains(np.array([1.5, 3.0]))
        assert barrier.contains(barrier.analytic_center_start())
