"""Tests for the public facade API and the Figure-1 pipeline."""

import numpy as np
import pytest

from repro import core
from repro.graphs import generators, is_spectral_sparsifier
from repro.lp import LPProblem
from repro.solvers import BCCLaplacianSolver


class TestFacade:
    def test_spanner_facade(self):
        g = generators.random_weighted_graph(18, seed=1)
        result = core.spanner(g, k=2, seed=2)
        assert result.spanner_graph(g).is_connected()

    def test_sparsifier_facade(self):
        g = generators.random_weighted_graph(18, seed=3)
        result = core.spectral_sparsifier(g, eps=0.5, seed=4)
        assert is_spectral_sparsifier(g, result.sparsifier, eps=0.5)

    def test_laplacian_facade_with_and_without_reuse(self):
        g = generators.random_weighted_graph(18, seed=5)
        rng = np.random.default_rng(6)
        b = rng.normal(size=g.n)
        report = core.solve_laplacian(g, b, eps=1e-6, seed=7, t_override=2)
        assert report.solution.shape == (g.n,)
        solver = BCCLaplacianSolver(g, seed=8, t_override=2)
        report2 = core.solve_laplacian(g, b, eps=1e-6, solver=solver)
        np.testing.assert_allclose(report.solution, report2.solution, atol=1e-4)

    def test_lp_facade_engines(self):
        rng = np.random.default_rng(9)
        m, n = 14, 3
        A = rng.normal(size=(m, n))
        x0 = rng.uniform(0.4, 0.6, size=m)
        problem = LPProblem(A=A, b=A.T @ x0, c=rng.normal(size=m), lower=np.zeros(m), upper=np.ones(m))
        barrier = core.solve_lp(problem, x0, eps=1e-5, engine="barrier")
        assert barrier.converged
        with pytest.raises(ValueError):
            core.solve_lp(problem, x0, engine="unknown")

    def test_flow_facade(self):
        net = generators.random_flow_network(9, seed=10)
        result = core.min_cost_max_flow(net, seed=10, verify_against_baseline=True)
        assert result.value > 0


class TestPipeline:
    def test_figure_one_pipeline_runs_end_to_end(self):
        net = generators.random_flow_network(10, seed=11, max_capacity=6, max_cost=4)
        report = core.run_full_pipeline(net, seed=11)
        assert report.spanner_edges > 0
        assert report.sparsifier_edges > 0
        assert report.laplacian_relative_error <= 1e-6
        assert report.flow_value > 0
        assert report.total_rounds > 0
        assert set(report.stage_rounds) == {
            "spanner",
            "sparsifier",
            "laplacian_solver",
            "lp_and_flow",
        }


class TestBatchedFacades:
    def test_solve_many_matches_single_solves(self):
        graph = generators.random_weighted_graph(30, average_degree=5, seed=3)
        rng = np.random.default_rng(0)
        rhs = [rng.normal(size=graph.n) for _ in range(3)]
        reports = core.solve_many(graph, rhs, eps=1e-8, seed=1, t_override=2)
        reference = BCCLaplacianSolver(graph, seed=1, t_override=2)
        assert len(reports) == 3
        for report, b in zip(reports, rhs):
            np.testing.assert_allclose(
                report.solution, reference.exact_solution(b), atol=1e-6
            )

    def test_solve_many_reuses_supplied_solver(self):
        graph = generators.random_weighted_graph(30, average_degree=5, seed=3)
        solver = BCCLaplacianSolver(graph, seed=1, t_override=2)
        rng = np.random.default_rng(1)
        reports = core.solve_many(
            graph, [rng.normal(size=graph.n)], eps=1e-6, solver=solver
        )
        assert len(reports) == 1

    def test_effective_resistances_all_edges_default(self):
        graph = generators.grid_graph(5, 5)
        from repro.graphs import effective_resistances as graph_er

        np.testing.assert_allclose(
            core.effective_resistances(graph), graph_er(graph), rtol=1e-9
        )

    def test_effective_resistances_pairs_dense_vs_sparse(self):
        graph = generators.random_weighted_graph(40, average_degree=6, seed=5)
        rng = np.random.default_rng(2)
        pairs = [(int(u), int(v)) for u, v in rng.integers(0, graph.n, (25, 2))]
        dense = core.effective_resistances(graph, pairs=pairs, backend="dense")
        sparse = core.effective_resistances(graph, pairs=pairs, backend="sparse")
        np.testing.assert_allclose(dense, sparse, rtol=1e-8, atol=1e-10)

    def test_effective_resistances_pair_semantics(self):
        # two components: a triangle and an edge
        from repro.graphs.graph import WeightedGraph

        graph = WeightedGraph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(3, 4, 2.0)
        for backend in ("dense", "sparse"):
            values = core.effective_resistances(
                graph, pairs=[(0, 0), (0, 3), (3, 4)], backend=backend
            )
            assert values[0] == 0.0
            assert np.isinf(values[1])
            np.testing.assert_allclose(values[2], 0.5)

    def test_effective_resistances_validates_pairs(self):
        graph = generators.grid_graph(3, 3)
        with pytest.raises(ValueError):
            core.effective_resistances(graph, pairs=[(0, 99)], backend="dense")
        with pytest.raises(ValueError):
            core.effective_resistances(graph, pairs=[(0, 99)], backend="sparse")
        assert core.effective_resistances(graph, pairs=[]).shape == (0,)
