"""Tests for the public facade API and the Figure-1 pipeline."""

import numpy as np
import pytest

from repro import core
from repro.graphs import generators, is_spectral_sparsifier
from repro.lp import LPProblem
from repro.solvers import BCCLaplacianSolver


class TestFacade:
    def test_spanner_facade(self):
        g = generators.random_weighted_graph(18, seed=1)
        result = core.spanner(g, k=2, seed=2)
        assert result.spanner_graph(g).is_connected()

    def test_sparsifier_facade(self):
        g = generators.random_weighted_graph(18, seed=3)
        result = core.spectral_sparsifier(g, eps=0.5, seed=4)
        assert is_spectral_sparsifier(g, result.sparsifier, eps=0.5)

    def test_laplacian_facade_with_and_without_reuse(self):
        g = generators.random_weighted_graph(18, seed=5)
        rng = np.random.default_rng(6)
        b = rng.normal(size=g.n)
        report = core.solve_laplacian(g, b, eps=1e-6, seed=7, t_override=2)
        assert report.solution.shape == (g.n,)
        solver = BCCLaplacianSolver(g, seed=8, t_override=2)
        report2 = core.solve_laplacian(g, b, eps=1e-6, solver=solver)
        np.testing.assert_allclose(report.solution, report2.solution, atol=1e-4)

    def test_lp_facade_engines(self):
        rng = np.random.default_rng(9)
        m, n = 14, 3
        A = rng.normal(size=(m, n))
        x0 = rng.uniform(0.4, 0.6, size=m)
        problem = LPProblem(A=A, b=A.T @ x0, c=rng.normal(size=m), lower=np.zeros(m), upper=np.ones(m))
        barrier = core.solve_lp(problem, x0, eps=1e-5, engine="barrier")
        assert barrier.converged
        with pytest.raises(ValueError):
            core.solve_lp(problem, x0, engine="unknown")

    def test_flow_facade(self):
        net = generators.random_flow_network(9, seed=10)
        result = core.min_cost_max_flow(net, seed=10, verify_against_baseline=True)
        assert result.value > 0


class TestPipeline:
    def test_figure_one_pipeline_runs_end_to_end(self):
        net = generators.random_flow_network(10, seed=11, max_capacity=6, max_cost=4)
        report = core.run_full_pipeline(net, seed=11)
        assert report.spanner_edges > 0
        assert report.sparsifier_edges > 0
        assert report.laplacian_relative_error <= 1e-6
        assert report.flow_value > 0
        assert report.total_rounds > 0
        assert set(report.stage_rounds) == {
            "spanner",
            "sparsifier",
            "laplacian_solver",
            "lp_and_flow",
        }
