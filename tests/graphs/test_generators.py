"""Tests for the graph generators."""

import numpy as np
import pytest

from repro.graphs import generators


class TestDeterministicGenerators:
    def test_path_cycle_star_complete_sizes(self):
        assert generators.path_graph(5).m == 4
        assert generators.cycle_graph(5).m == 5
        assert generators.star_graph(5).m == 4
        assert generators.complete_graph(5).m == 10

    def test_cycle_needs_three_vertices(self):
        with pytest.raises(ValueError):
            generators.cycle_graph(2)

    def test_grid_graph(self):
        g = generators.grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert g.is_connected()

    def test_barbell_graph_connected(self):
        g = generators.barbell_graph(4, path_length=2)
        assert g.is_connected()
        # two K_4's plus the connecting path
        assert g.m >= 2 * 6 + 1


class TestRandomGenerators:
    def test_erdos_renyi_connected_by_default(self):
        for seed in range(5):
            g = generators.erdos_renyi(20, 0.05, seed=seed)
            assert g.is_connected()

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi(10, 1.5)

    def test_connect_components_single_sweep_matches_quadratic_reference(self):
        """The one-pass ``_connect_components`` must replay the exact rng call
        sequence of the original recompute-per-edge implementation."""
        from repro.graphs.graph import WeightedGraph

        def connect_reference(graph, rng, max_weight):
            components = graph.connected_components()
            while len(components) > 1:
                first = sorted(components[0])
                second = sorted(components[1])
                u = int(rng.choice(first))
                v = int(rng.choice(second))
                weight = float(rng.integers(1, max(2, int(max_weight)) + 1))
                graph.add_edge(u, v, weight)
                components = graph.connected_components()

        for seed in range(10):
            def build(rng):
                g = WeightedGraph(25)
                for u in range(25):
                    for v in range(u + 1, 25):
                        if rng.random() < 0.04:
                            g.add_edge(u, v, float(rng.integers(1, 9)))
                return g

            rng_a, rng_b = np.random.default_rng(seed), np.random.default_rng(seed)
            expected, actual = build(rng_a), build(rng_b)
            connect_reference(expected, rng_a, 8.0)
            generators._connect_components(actual, rng_b, 8.0)
            assert actual == expected
            assert actual.is_connected()
            # rng state must also agree so downstream draws stay seed-stable
            assert rng_a.integers(0, 2**31) == rng_b.integers(0, 2**31)

    def test_connect_components_already_connected_consumes_no_randomness(self):
        rng = np.random.default_rng(0)
        g = generators.path_graph(6)
        before = rng.bit_generator.state
        generators._connect_components(g, rng, 4.0)
        assert rng.bit_generator.state == before

    def test_erdos_renyi_reproducible(self):
        a = generators.erdos_renyi(15, 0.3, seed=42)
        b = generators.erdos_renyi(15, 0.3, seed=42)
        assert a == b

    def test_random_weighted_graph_degree_scaling(self):
        sparse = generators.random_weighted_graph(30, average_degree=3, seed=1)
        dense = generators.random_weighted_graph(30, average_degree=12, seed=1)
        assert dense.m > sparse.m

    def test_weights_are_positive_integers_below_bound(self):
        g = generators.random_weighted_graph(20, max_weight=9, seed=3)
        for edge in g.edges():
            assert 1 <= edge.weight <= 9
            assert edge.weight == int(edge.weight)

    def test_expander_has_min_degree(self):
        g = generators.random_regular_expander(24, degree=4, seed=5)
        assert g.is_connected()
        assert min(g.degree(v) for v in g.vertices()) >= 1

    def test_bounded_weight_generator(self):
        g = generators.weighted_graph_with_bounded_weights(20, max_weight=64, seed=6)
        assert g.is_connected()
        assert g.max_weight() <= 64


class TestFlowGenerators:
    def test_random_flow_network_reproducible(self):
        a = generators.random_flow_network(10, seed=7)
        b = generators.random_flow_network(10, seed=7)
        assert a.edge_keys() == b.edge_keys()
        np.testing.assert_allclose(a.capacities(), b.capacities())
        np.testing.assert_allclose(a.costs(), b.costs())

    def test_no_edges_into_source_or_out_of_sink_except_backbone(self):
        net = generators.random_flow_network(12, seed=8)
        # the generator only adds non-backbone edges avoiding the source as head
        for (u, v) in net.edge_keys():
            assert v != net.source or u == net.source

    def test_layered_network_is_dag_like(self):
        import networkx as nx

        net = generators.layered_flow_network(4, 3, seed=9)
        assert nx.is_directed_acyclic_graph(net.to_networkx())


class TestScaleFreeAndSmallWorld:
    def test_barabasi_albert_size_and_connectivity(self):
        g = generators.barabasi_albert(200, attach=3, seed=1)
        assert g.n == 200
        # clique on 4 vertices + 3 edges per later vertex
        assert g.m == 6 + 3 * (200 - 4)
        assert g.is_connected()
        assert min(g.degree(v) for v in g.vertices()) >= 3

    def test_barabasi_albert_reproducible(self):
        a = generators.barabasi_albert(60, attach=2, seed=5)
        b = generators.barabasi_albert(60, attach=2, seed=5)
        assert a == b
        c = generators.barabasi_albert(60, attach=2, seed=6)
        assert a != c

    def test_barabasi_albert_heavy_tail(self):
        g = generators.barabasi_albert(400, attach=2, seed=7)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # preferential attachment concentrates degree on early hubs
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_barabasi_albert_small_n_is_clique(self):
        g = generators.barabasi_albert(4, attach=4, seed=1)
        assert g.m == 6  # n <= attach + 1: complete graph

    def test_barabasi_albert_rejects_bad_attach(self):
        with pytest.raises(ValueError):
            generators.barabasi_albert(10, attach=0)

    def test_watts_strogatz_size_and_connectivity(self):
        g = generators.watts_strogatz(100, k=4, beta=0.2, seed=3)
        assert g.n == 100
        # rewiring preserves the edge count; ensure_connected may add a few
        assert g.m >= 100 * 4 // 2
        assert g.is_connected()

    def test_watts_strogatz_beta_zero_is_lattice(self):
        g = generators.watts_strogatz(20, k=4, beta=0.0, seed=4)
        assert g.m == 40
        for v in range(20):
            assert g.degree(v) == 4
            for j in (1, 2):
                assert g.has_edge(v, (v + j) % 20)

    def test_watts_strogatz_rewires_for_positive_beta(self):
        lattice = generators.watts_strogatz(60, k=6, beta=0.0, seed=8)
        rewired = generators.watts_strogatz(60, k=6, beta=0.5, seed=8)
        assert rewired != lattice

    def test_watts_strogatz_reproducible(self):
        a = generators.watts_strogatz(50, k=4, beta=0.3, seed=9)
        b = generators.watts_strogatz(50, k=4, beta=0.3, seed=9)
        assert a == b

    def test_watts_strogatz_validation(self):
        with pytest.raises(ValueError):
            generators.watts_strogatz(10, k=3)  # odd k
        with pytest.raises(ValueError):
            generators.watts_strogatz(4, k=4)  # k >= n
        with pytest.raises(ValueError):
            generators.watts_strogatz(10, k=4, beta=1.5)
