"""Tests for the weighted undirected graph data structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Edge, WeightedGraph, canonical_edge
from repro.graphs import generators


class TestEdge:
    def test_canonical_key_sorted(self):
        assert Edge(3, 1, 2.0).key == (1, 3)
        assert canonical_edge(5, 2) == (2, 5)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            Edge(2, 2, 1.0)
        with pytest.raises(ValueError):
            canonical_edge(4, 4)

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            Edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            Edge(0, 1, -1.0)

    def test_other_endpoint(self):
        e = Edge(2, 5, 1.0)
        assert e.other(2) == 5
        assert e.other(5) == 2
        with pytest.raises(ValueError):
            e.other(7)


class TestWeightedGraphBasics:
    def test_add_and_query_edges(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 2, 3.0)
        assert g.has_edge(1, 0)
        assert g.weight(0, 1) == 2.0
        assert g.m == 2
        assert g.neighbours(1) == {0, 2}
        assert g.degree(1) == 2
        assert g.weighted_degree(1) == 5.0

    def test_add_edge_overwrites_weight(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 7.0)
        assert g.m == 1
        assert g.weight(0, 1) == 7.0

    def test_remove_edge(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.remove_edge(0, 1)
        assert g.m == 0
        assert not g.has_edge(0, 1)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_remove_edge_validates_vertices(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            g.remove_edge(0, 5)
        with pytest.raises(ValueError):
            g.remove_edge(-1, 0)
        with pytest.raises(ValueError):
            g.remove_edge(0, 0)
        assert g.has_edge(0, 1)  # failed removals must not mutate the graph

    def test_edge_array_matches_edge_list(self):
        g = WeightedGraph(4)
        g.add_edge(2, 3, 5.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(1, 3, 7.0)
        u, v, w = g.edge_array()
        assert list(zip(u.tolist(), v.tolist(), w.tolist())) == g.edge_list()

    def test_edge_array_cache_invalidated_on_mutation(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        u, v, w = g.edge_array()
        assert g.edge_array() is not None and g.edge_array()[0] is u  # cached
        g.add_edge(1, 2, 2.0)
        assert g.edge_array()[0].size == 2
        g.remove_edge(0, 1)
        assert g.edge_array()[0].size == 1
        with pytest.raises(ValueError):
            g.edge_array()[2][0] = 9.0  # cached views are read-only

    def test_edge_array_empty_graph(self):
        g = WeightedGraph(2)
        u, v, w = g.edge_array()
        assert u.size == v.size == w.size == 0

    def test_rejects_invalid_vertices_and_weights(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 5, 1.0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -2.0)
        with pytest.raises(ValueError):
            WeightedGraph(0)

    def test_copy_is_independent(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        h = g.copy()
        h.add_edge(1, 2, 1.0)
        assert g.m == 1
        assert h.m == 2

    def test_equality(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        h = WeightedGraph(3, [(0, 1, 1.0)])
        assert g == h
        h.add_edge(1, 2, 1.0)
        assert g != h

    def test_edge_list_sorted_canonical(self):
        g = WeightedGraph(4, [(3, 1, 1.0), (2, 0, 2.0)])
        assert g.edge_list() == [(0, 2, 2.0), (1, 3, 1.0)]

    def test_contains_and_repr(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        assert (1, 0) in g
        assert (0, 2) not in g
        assert "WeightedGraph" in repr(g)

    def test_weight_extremes_and_total(self):
        g = WeightedGraph(4, [(0, 1, 2.0), (1, 2, 8.0), (2, 3, 4.0)])
        assert g.max_weight() == 8.0
        assert g.min_weight() == 2.0
        assert g.total_weight() == 14.0
        assert WeightedGraph(2).max_weight() == 0.0


class TestConnectivity:
    def test_connected_and_components(self):
        g = WeightedGraph(5, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        assert not g.is_connected()
        components = g.connected_components()
        assert sorted(map(sorted, components)) == [[0, 1, 2], [3, 4]]

    def test_single_vertex_is_connected(self):
        assert WeightedGraph(1).is_connected()

    def test_subgraph_with_edges(self):
        g = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        sub = g.subgraph_with_edges([(1, 2), (2, 3)])
        assert sub.m == 2
        assert sub.weight(1, 2) == 2.0
        assert not sub.has_edge(0, 1)

    def test_reweighted(self):
        g = WeightedGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        h = g.reweighted({(0, 1): 5.0})
        assert h.weight(0, 1) == 5.0
        assert h.weight(1, 2) == 2.0


class TestShortestPaths:
    def test_dijkstra_on_weighted_path(self):
        g = WeightedGraph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)])
        dist = g.shortest_path_lengths_from(0)
        assert dist[3] == 7.0
        assert dist[0] == 0.0

    def test_unreachable_is_infinite(self):
        g = WeightedGraph(3, [(0, 1, 1.0)])
        dist = g.shortest_path_lengths_from(0)
        assert dist[2] == float("inf")

    def test_all_pairs_symmetric(self):
        g = generators.random_weighted_graph(12, seed=3)
        dist = g.all_pairs_shortest_paths()
        np.testing.assert_allclose(dist, dist.T)
        assert np.all(np.diag(dist) == 0.0)

    def test_distances_agree_with_networkx(self):
        import networkx as nx

        g = generators.random_weighted_graph(15, seed=9)
        nxg = g.to_networkx()
        expected = dict(nx.all_pairs_dijkstra_path_length(nxg))
        dist = g.all_pairs_shortest_paths()
        for u in range(g.n):
            for v in range(g.n):
                assert dist[u, v] == pytest.approx(expected[u][v])


class TestNetworkxRoundtrip:
    def test_roundtrip_preserves_edges_and_weights(self):
        g = generators.random_weighted_graph(10, seed=4)
        back = WeightedGraph.from_networkx(g.to_networkx())
        assert back == g


@st.composite
def random_graph_strategy(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    return n, list(zip(chosen, weights))


class TestGraphProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_graph_strategy())
    def test_degree_sum_is_twice_edge_count(self, data):
        n, edges = data
        g = WeightedGraph(n)
        for (u, v), w in edges:
            g.add_edge(u, v, w)
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.m

    @settings(max_examples=50, deadline=None)
    @given(random_graph_strategy())
    def test_neighbour_relation_is_symmetric(self, data):
        n, edges = data
        g = WeightedGraph(n)
        for (u, v), w in edges:
            g.add_edge(u, v, w)
        for v in g.vertices():
            for u in g.neighbours(v):
                assert v in g.neighbours(u)

    @settings(max_examples=50, deadline=None)
    @given(random_graph_strategy())
    def test_components_partition_vertices(self, data):
        n, edges = data
        g = WeightedGraph(n)
        for (u, v), w in edges:
            g.add_edge(u, v, w)
        components = g.connected_components()
        union = set().union(*components) if components else set()
        assert union == set(range(n))
        assert sum(len(c) for c in components) == n
