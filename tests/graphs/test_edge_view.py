"""Tests for the bulk edge API and the array-native edge views."""

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import EdgeView, WeightedGraph


class TestAddEdges:
    def test_matches_scalar_add_edge(self):
        edges = [(0, 3, 1.5), (1, 2, 2.0), (2, 4, 0.25), (3, 4, 7.0)]
        scalar = WeightedGraph(5)
        for u, v, w in edges:
            scalar.add_edge(u, v, w)
        bulk = WeightedGraph(5)
        u, v, w = zip(*edges)
        bulk.add_edges(np.array(u), np.array(v), np.array(w))
        assert bulk == scalar

    def test_scalar_weight_broadcast(self):
        g = WeightedGraph(4)
        g.add_edges([0, 1, 2], [1, 2, 3])
        assert g.m == 3
        assert all(e.weight == 1.0 for e in g.edges())

    def test_canonicalises_endpoint_order(self):
        g = WeightedGraph(4)
        g.add_edges([3, 2], [0, 1], [1.0, 2.0])
        assert g.weight(0, 3) == 1.0
        assert g.weight(1, 2) == 2.0

    def test_duplicate_within_batch_last_wins(self):
        g = WeightedGraph(3)
        g.add_edges([0, 1, 0], [1, 2, 1], [1.0, 1.0, 5.0])
        assert g.weight(0, 1) == 5.0

    def test_empty_batch_is_noop(self):
        g = WeightedGraph(3)
        g.add_edges([], [])
        assert g.m == 0

    def test_rejects_out_of_range(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError, match="out of range"):
            g.add_edges([0], [3])

    def test_rejects_self_loops(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError, match="self-loops"):
            g.add_edges([0, 1], [1, 1])

    def test_rejects_non_positive_weights(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError, match="positive"):
            g.add_edges([0], [1], [0.0])

    def test_rejects_misaligned_arrays(self):
        g = WeightedGraph(3)
        with pytest.raises(ValueError, match="align"):
            g.add_edges([0, 1], [1])

    def test_invalidates_edge_array_cache(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.edge_array()
        g.add_edges([1], [2], [2.0])
        u, v, w = g.edge_array()
        assert list(zip(u.tolist(), v.tolist())) == [(0, 1), (1, 2)]


class TestEdgeView:
    @pytest.fixture
    def graph(self):
        return generators.random_weighted_graph(20, average_degree=5, max_weight=8, seed=3)

    def test_full_view_mirrors_graph(self, graph):
        view = EdgeView.from_graph(graph)
        assert view.n == graph.n
        assert view.m == graph.m == view.base_m
        assert view.max_weight() == graph.max_weight()
        u, v, w = graph.edge_array()
        np.testing.assert_array_equal(view.u, u)
        np.testing.assert_array_equal(view.v, v)
        np.testing.assert_array_equal(view.w, w)

    def test_subview_counts_alive_edges_only(self, graph):
        view = EdgeView.from_graph(graph)
        alive = np.zeros(view.base_m, dtype=bool)
        alive[:4] = True
        sub = view.subview(alive)
        assert sub.m == 4
        assert sub.base_m == view.base_m
        np.testing.assert_array_equal(sub.alive_indices(), np.arange(4))

    def test_max_weight_respects_mask(self, graph):
        view = EdgeView.from_graph(graph)
        alive = np.ones(view.base_m, dtype=bool)
        alive[int(np.argmax(view.w))] = False
        assert view.subview(alive).max_weight() == float(np.max(view.w[alive]))
        assert view.subview(np.zeros(view.base_m, dtype=bool)).max_weight() == 0.0

    def test_adjacency_lists_sorted_and_consistent(self, graph):
        view = EdgeView.from_graph(graph)
        adj = view.adjacency_lists()
        for v in range(view.n):
            neighbours = [u for u, _w, _ei in adj[v]]
            assert neighbours == sorted(graph.neighbours(v))
            for u, w, ei in adj[v]:
                assert w == graph.weight(u, v)
                assert view.edge_key(ei) == tuple(sorted((u, v)))

    def test_adjacency_lists_respect_mask(self, graph):
        view = EdgeView.from_graph(graph)
        alive = np.zeros(view.base_m, dtype=bool)
        alive[::2] = True
        adj = view.subview(alive).adjacency_lists()
        seen = {tuple(sorted((v, u))) for v in range(view.n) for u, _w, _ei in adj[v]}
        expected = {view.edge_key(i) for i in np.flatnonzero(alive)}
        assert seen == expected

    def test_to_graph_round_trip(self, graph):
        view = EdgeView.from_graph(graph)
        assert view.to_graph() == graph
        alive = np.zeros(view.base_m, dtype=bool)
        alive[:3] = True
        keys = [view.edge_key(i) for i in range(3)]
        assert view.subview(alive).to_graph() == graph.subgraph_with_edges(keys)

    def test_weight_column_is_private_copy(self, graph):
        view = EdgeView.from_graph(graph)
        before = graph.max_weight()
        view.w *= 4.0
        assert graph.max_weight() == before
