"""The per-graph mutation journal behind incremental artifact repair."""

import numpy as np
import pytest

from repro.graphs.graph import JOURNAL_LIMIT, MutationRecord, WeightedGraph


def test_add_edge_records_pure_insertion():
    g = WeightedGraph(4)
    v0 = g.version
    g.add_edge(2, 1, 1.5)
    delta = g.delta_since(v0)
    assert delta == [
        MutationRecord(version=v0 + 1, op="add", u=1, v=2, weight=1.5, prev_weight=None)
    ]
    assert delta[0].weight_delta == 1.5


def test_overwrite_records_update_with_previous_weight():
    g = WeightedGraph(4, edges=[(0, 1, 2.0)])
    v0 = g.version
    g.add_edge(0, 1, 5.0)
    (record,) = g.delta_since(v0)
    assert record.op == "update"
    assert record.prev_weight == 2.0
    assert record.weight == 5.0
    assert record.weight_delta == 3.0


def test_remove_edge_records_removal():
    g = WeightedGraph(4, edges=[(0, 1, 2.0)])
    v0 = g.version
    g.remove_edge(1, 0)
    (record,) = g.delta_since(v0)
    assert record.op == "remove"
    assert record.weight is None
    assert record.prev_weight == 2.0
    assert record.weight_delta == -2.0


def test_delta_since_current_version_is_empty():
    g = WeightedGraph(3, edges=[(0, 1, 1.0)])
    assert g.delta_since(g.version) == []


def test_delta_since_future_version_is_unavailable():
    g = WeightedGraph(3)
    assert g.delta_since(g.version + 1) is None


def test_delta_spans_multiple_mutations_in_order():
    g = WeightedGraph(5)
    v0 = g.version
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(0, 1, 3.0)
    g.remove_edge(1, 2)
    delta = g.delta_since(v0)
    assert [r.op for r in delta] == ["add", "add", "update", "remove"]
    assert [r.version for r in delta] == [v0 + 1, v0 + 2, v0 + 3, v0 + 4]
    # a delta from a mid-point only contains the tail
    assert [r.op for r in g.delta_since(v0 + 2)] == ["update", "remove"]


def test_bulk_add_edges_shares_one_version():
    g = WeightedGraph(6)
    v0 = g.version
    g.add_edges([0, 1, 2], [3, 4, 5], [1.0, 2.0, 3.0])
    delta = g.delta_since(v0)
    assert g.version == v0 + 1
    assert len(delta) == 3
    assert all(r.version == g.version for r in delta)
    assert all(r.op == "add" for r in delta)


def test_bulk_add_edges_duplicate_pair_last_wins_in_journal():
    g = WeightedGraph(4)
    v0 = g.version
    g.add_edges([0, 0], [1, 1], [1.0, 7.0])
    delta = g.delta_since(v0)
    assert [r.op for r in delta] == ["add", "update"]
    assert delta[-1].weight == 7.0
    assert g.weight(0, 1) == 7.0


def test_journal_window_overflow_reports_unavailable():
    g = WeightedGraph(2, edges=[(0, 1, 1.0)])
    v0 = g.version
    for i in range(JOURNAL_LIMIT + 10):
        g.add_edge(0, 1, 1.0 + i)
    assert g.delta_since(v0) is None  # reaches past the retained window
    # but a recent version is still fully reconstructible
    recent = g.version - 5
    delta = g.delta_since(recent)
    assert len(delta) == 5
    assert all(r.op == "update" for r in delta)


def test_giant_bulk_mutation_drops_the_journal():
    n = 200
    g = WeightedGraph(n, edges=[(0, 1, 1.0)])
    v0 = g.version
    rng = np.random.default_rng(0)
    u = rng.integers(0, n - 1, JOURNAL_LIMIT + 100)
    v = u + 1  # guaranteed distinct endpoints
    g.add_edges(u, v, 1.0)
    assert g.delta_since(v0) is None
    assert g.delta_since(g.version) == []
    # and journalling resumes afterwards
    v1 = g.version
    g.add_edge(0, 199, 2.0)
    assert len(g.delta_since(v1)) == 1


def test_mixed_traffic_at_exactly_the_window_boundary():
    """Complete-or-None at the 1024-record edge under mixed op traffic.

    A consumer that snapshotted ``version`` and then let exactly
    ``JOURNAL_LIMIT`` mixed records land must still get the full delta; one
    more record anywhere in the mix (bulk ``add_edges`` sharing a version,
    scalar ``remove_edge``) must flip the answer to ``None`` -- never a
    truncated list missing the overflowed record.
    """
    n = JOURNAL_LIMIT + 50
    g = WeightedGraph(n, edges=[(0, 1, 1.0), (1, 2, 1.0)])
    v0 = g.version
    # JOURNAL_LIMIT records exactly: one removal, one bulk batch of 7
    # (one shared version, 7 records), then scalar adds for the rest
    g.remove_edge(0, 1)
    g.add_edges(range(2, 9), range(3, 10), [1.0] * 7)
    for i in range(JOURNAL_LIMIT - 8):
        g.add_edge(10 + i, 11 + i, 1.0)
    delta = g.delta_since(v0)
    assert delta is not None and len(delta) == JOURNAL_LIMIT
    assert delta[0].op == "remove"
    # the 1025th record evicts the removal: the same request now rebuilds
    g.add_edge(0, 1, 2.0)
    assert g.delta_since(v0) is None
    # while a request from just past the eviction point stays complete
    tail = g.delta_since(v0 + 1)
    assert tail is not None and len(tail) == JOURNAL_LIMIT


def test_overflow_is_complete_or_none_under_concurrent_mutation():
    """The serving tier reads deltas on its flush thread while user threads
    mutate: an overflowing journal must never hand the reader a truncated
    delta (or blow up iterating a deque that mutated underneath it)."""
    import threading

    g = WeightedGraph(64, edges=[(0, 1, 1.0)])
    stop = threading.Event()
    problems = []

    def mutate():
        i = 0
        while not stop.is_set():
            g.add_edge(0, 1, 1.0 + (i % 97))
            if i % 5 == 0:
                g.remove_edge(0, 1)
                g.add_edge(0, 1, 1.0)
            i += 1

    def read():
        while not stop.is_set():
            v = g.version
            delta = g.delta_since(v)
            if delta is None:
                continue  # overflowed past v: the honest rebuild answer
            versions = [r.version for r in delta]
            if any(x < v + 1 for x in versions):
                problems.append(("stale record", v, versions[:3]))
            if versions != sorted(versions):
                problems.append(("out of order", v, versions[:3]))

    threads = [threading.Thread(target=mutate), threading.Thread(target=read)]
    for t in threads:
        t.start()
    stop_timer = threading.Timer(1.0, stop.set)
    stop_timer.start()
    for t in threads:
        t.join(timeout=30)
    stop_timer.cancel()
    stop.set()
    assert not problems, problems[:5]


def test_copy_carries_the_journal():
    g = WeightedGraph(4)
    v0 = g.version
    g.add_edge(0, 1, 1.0)
    h = g.copy()
    assert h.delta_since(v0) == g.delta_since(v0)
    h.add_edge(2, 3, 1.0)
    assert len(h.delta_since(v0)) == 2
    assert len(g.delta_since(v0)) == 1  # the copy's journal is private


def test_failed_mutations_do_not_journal():
    g = WeightedGraph(4, edges=[(0, 1, 1.0)])
    v0 = g.version
    with pytest.raises(ValueError):
        g.add_edge(0, 0, 1.0)
    with pytest.raises(ValueError):
        g.add_edge(0, 2, -1.0)
    with pytest.raises(KeyError):
        g.remove_edge(2, 3)
    assert g.delta_since(v0) == []
    assert g.version == v0
