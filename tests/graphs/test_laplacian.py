"""Tests for Laplacian/incidence matrices and spectral comparisons."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    effective_resistances,
    generators,
    incidence_matrix,
    is_spectral_sparsifier,
    laplacian_matrix,
    laplacian_quadratic_form,
    spectral_approximation_factor,
    relative_condition_number,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.laplacian import (
    graph_from_laplacian,
    is_symmetric_diagonally_dominant,
    laplacian_norm,
    laplacian_pseudoinverse,
)


class TestLaplacianMatrix:
    def test_matches_incidence_factorisation(self):
        g = generators.random_weighted_graph(12, seed=1)
        L = laplacian_matrix(g)
        B, w = incidence_matrix(g)
        np.testing.assert_allclose(L, B.T @ np.diag(w) @ B, atol=1e-12)

    def test_row_sums_zero(self):
        g = generators.random_weighted_graph(10, seed=2)
        L = laplacian_matrix(g)
        np.testing.assert_allclose(L @ np.ones(g.n), 0.0, atol=1e-12)

    def test_positive_semidefinite(self):
        g = generators.random_weighted_graph(10, seed=3)
        eigs = np.linalg.eigvalsh(laplacian_matrix(g))
        assert np.all(eigs >= -1e-9)

    def test_quadratic_form_matches_matrix(self, rng):
        g = generators.random_weighted_graph(12, seed=4)
        L = laplacian_matrix(g)
        for _ in range(5):
            x = rng.normal(size=g.n)
            assert laplacian_quadratic_form(g, x) == pytest.approx(float(x @ L @ x))

    def test_connected_graph_has_rank_n_minus_1(self):
        g = generators.random_weighted_graph(12, seed=5)
        L = laplacian_matrix(g)
        assert np.linalg.matrix_rank(L) == g.n - 1

    def test_laplacian_norm_nonnegative(self, rng):
        g = generators.random_weighted_graph(8, seed=6)
        L = laplacian_matrix(g)
        x = rng.normal(size=g.n)
        assert laplacian_norm(L, x) >= 0.0

    def test_graph_from_laplacian_roundtrip(self):
        g = generators.random_weighted_graph(9, seed=7)
        back = graph_from_laplacian(laplacian_matrix(g))
        assert back == g


class TestEffectiveResistances:
    def test_path_graph_resistances(self):
        g = generators.path_graph(4)
        # every edge of a tree has effective resistance = 1/weight
        np.testing.assert_allclose(effective_resistances(g), np.ones(3), atol=1e-9)

    def test_resistances_bounded_by_inverse_weight(self):
        g = generators.random_weighted_graph(10, seed=8)
        resistances = effective_resistances(g)
        for r, edge in zip(resistances, g.edges()):
            assert r <= 1.0 / edge.weight + 1e-9
            assert r > 0

    def test_fosters_theorem(self):
        # sum of w_e * R_eff(e) = n - 1 for connected graphs
        g = generators.random_weighted_graph(12, seed=9)
        resistances = effective_resistances(g)
        weighted_sum = sum(r * e.weight for r, e in zip(resistances, g.edges()))
        assert weighted_sum == pytest.approx(g.n - 1, rel=1e-6)


class TestSpectralComparison:
    def test_graph_approximates_itself(self):
        g = generators.random_weighted_graph(10, seed=10)
        lo, hi = spectral_approximation_factor(g, g)
        assert lo == pytest.approx(1.0, abs=1e-6)
        assert hi == pytest.approx(1.0, abs=1e-6)
        assert is_spectral_sparsifier(g, g, eps=0.01)
        assert relative_condition_number(g, g) == pytest.approx(1.0, abs=1e-6)

    def test_scaled_graph_detected(self):
        g = generators.random_weighted_graph(10, seed=11)
        h = WeightedGraph(g.n)
        for edge in g.edges():
            h.add_edge(edge.u, edge.v, 2.0 * edge.weight)
        lo, hi = spectral_approximation_factor(g, h)
        assert lo == pytest.approx(0.5, abs=1e-6)
        assert hi == pytest.approx(0.5, abs=1e-6)
        assert not is_spectral_sparsifier(g, h, eps=0.1)

    def test_spanning_tree_is_weak_approximation(self):
        g = generators.complete_graph(8)
        tree = generators.star_graph(8)
        lo, hi = spectral_approximation_factor(g, tree)
        assert hi >= 1.0  # K_n dominates its star
        assert lo > 0.0

    def test_removing_edges_lowers_the_bottom_factor(self):
        g = generators.complete_graph(8)
        h = g.copy()
        h.remove_edge(0, 1)
        lo, hi = spectral_approximation_factor(h, g)
        assert hi <= 1.0 + 1e-9
        assert lo < 1.0


class TestDegenerateSparsifiers:
    """Degenerate sparsifiers must never be certified vacuously.

    The seed implementation returned (1.0, 1.0) -- a *perfect* sparsifier --
    whenever the restricted eigenvalue set came back empty, so an empty-edge
    subgraph of any connected graph passed Definition 2.1.
    """

    def test_empty_sparsifier_of_connected_graph(self):
        g = generators.random_weighted_graph(10, seed=21)
        empty = WeightedGraph(g.n)
        lo, hi = spectral_approximation_factor(g, empty)
        assert lo == 0.0
        assert hi == float("inf")
        assert not is_spectral_sparsifier(g, empty, eps=0.99)

    def test_disconnected_sparsifier_of_connected_graph(self):
        g = generators.complete_graph(8)
        # keep only edges inside {4..7}: vertices 0-3 become isolated
        h = WeightedGraph(g.n)
        for u, v, w in g.edge_list():
            if u >= 4 and v >= 4:
                h.add_edge(u, v, w)
        lo, hi = spectral_approximation_factor(g, h)
        assert hi == float("inf")
        assert not is_spectral_sparsifier(g, h, eps=0.99)

    def test_sparsifier_with_isolated_vertices(self):
        g = generators.path_graph(6)
        h = WeightedGraph(g.n)
        h.add_edge(0, 1, 1.0)  # vertices 2..5 isolated in H
        lo, hi = spectral_approximation_factor(g, h)
        assert hi == float("inf")
        assert not is_spectral_sparsifier(g, h, eps=0.99)

    def test_condition_number_is_infinite_for_degenerate_preconditioner(self):
        g = generators.random_weighted_graph(10, seed=22)
        empty = WeightedGraph(g.n)
        assert relative_condition_number(g, empty) == float("inf")
        disconnected = WeightedGraph(g.n)
        edges = g.edge_list()
        u, v, w = edges[0]
        disconnected.add_edge(u, v, w)
        assert relative_condition_number(g, disconnected) == float("inf")

    def test_connected_sparsifier_still_certified(self):
        g = generators.random_weighted_graph(12, seed=23)
        assert is_spectral_sparsifier(g, g, eps=0.01)

    def test_empty_sparsifier_of_empty_graph_is_perfect(self):
        g = WeightedGraph(5)
        assert spectral_approximation_factor(g, g) == (1.0, 1.0)
        assert is_spectral_sparsifier(g, g, eps=0.01)

    @pytest.mark.parametrize("weight", [1e-10, 1e8])
    def test_certification_is_scale_invariant(self, weight):
        """Degenerate detection must be relative to the spectra's own scale: a
        uniformly tiny- (or huge-) weight graph is a perfect sparsifier of
        itself, not a degenerate one."""
        g = generators.path_graph(6, weight=weight)
        lo, hi = spectral_approximation_factor(g, g)
        assert lo == pytest.approx(1.0, abs=1e-6)
        assert hi == pytest.approx(1.0, abs=1e-6)
        assert is_spectral_sparsifier(g, g, eps=0.01)
        assert relative_condition_number(g, g) == pytest.approx(1.0, abs=1e-6)


class TestSDDCheck:
    def test_laplacian_is_sdd(self):
        g = generators.random_weighted_graph(8, seed=12)
        assert is_symmetric_diagonally_dominant(laplacian_matrix(g))

    def test_non_symmetric_rejected(self):
        M = np.array([[2.0, 1.0], [0.0, 2.0]])
        assert not is_symmetric_diagonally_dominant(M)

    def test_non_dominant_rejected(self):
        M = np.array([[1.0, -2.0], [-2.0, 1.0]])
        assert not is_symmetric_diagonally_dominant(M)


class TestPseudoinverse:
    def test_pinv_solves_consistent_systems(self, rng):
        g = generators.random_weighted_graph(10, seed=13)
        L = laplacian_matrix(g)
        Lp = laplacian_pseudoinverse(g)
        x = rng.normal(size=g.n)
        x -= x.mean()
        b = L @ x
        np.testing.assert_allclose(Lp @ b, x, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=3, max_value=12), st.integers(min_value=0, max_value=10**6))
def test_property_laplacian_psd_and_singular(n, seed):
    g = generators.random_weighted_graph(n, seed=seed)
    L = laplacian_matrix(g)
    eigs = np.linalg.eigvalsh(L)
    assert np.all(eigs >= -1e-8)
    assert abs(eigs[0]) <= 1e-8  # the all-ones kernel
