"""Tests for flow networks (directed capacitated graphs)."""

import numpy as np
import pytest

from repro.graphs.digraph import DirectedEdge, FlowNetwork
from repro.graphs import generators


def diamond_network():
    """s=0, t=3 with two disjoint paths."""
    net = FlowNetwork(4, source=0, sink=3)
    net.add_edge(0, 1, capacity=2, cost=1)
    net.add_edge(1, 3, capacity=2, cost=1)
    net.add_edge(0, 2, capacity=3, cost=2)
    net.add_edge(2, 3, capacity=1, cost=2)
    return net


class TestConstruction:
    def test_basic_properties(self):
        net = diamond_network()
        assert net.n == 4
        assert net.m == 4
        assert net.source == 0
        assert net.sink == 3
        assert net.has_edge(0, 1)
        assert not net.has_edge(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowNetwork(1, 0, 0)
        with pytest.raises(ValueError):
            FlowNetwork(3, 0, 0)
        with pytest.raises(ValueError):
            FlowNetwork(3, 0, 5)
        with pytest.raises(ValueError):
            DirectedEdge(0, 0, 1.0)
        with pytest.raises(ValueError):
            DirectedEdge(0, 1, 0.0)

    def test_capacity_and_cost_vectors_follow_edge_keys(self):
        net = diamond_network()
        keys = net.edge_keys()
        caps = net.capacities()
        costs = net.costs()
        for i, key in enumerate(keys):
            assert caps[i] == net.edge(*key).capacity
            assert costs[i] == net.edge(*key).cost

    def test_max_bounds(self):
        net = diamond_network()
        assert net.max_capacity() == 3
        assert net.max_cost_magnitude() == 2

    def test_neighbour_queries(self):
        net = diamond_network()
        assert net.out_neighbours(0) == {1, 2}
        assert net.in_neighbours(3) == {1, 2}

    def test_underlying_undirected_adjacency(self):
        net = diamond_network()
        adj = net.underlying_undirected_adjacency()
        assert adj[0] == {1, 2}
        assert adj[3] == {1, 2}

    def test_networkx_roundtrip(self):
        net = diamond_network()
        back = FlowNetwork.from_networkx(net.to_networkx(), 0, 3)
        assert back.m == net.m
        assert back.edge(0, 1).capacity == 2


class TestIncidenceMatrix:
    def test_shape_and_entries(self):
        net = diamond_network()
        B = net.incidence_matrix()
        assert B.shape == (4, 4)
        keys = net.edge_keys()
        for row, (u, v) in enumerate(keys):
            assert B[row, u] == -1.0
            assert B[row, v] == 1.0
            assert np.count_nonzero(B[row]) == 2

    def test_dropping_source_column(self):
        net = diamond_network()
        B = net.incidence_matrix(drop_vertex=net.source)
        assert B.shape == (4, 3)
        # rows of edges leaving the source have a single +1 entry
        for row, (u, v) in enumerate(net.edge_keys()):
            if u == net.source:
                assert np.count_nonzero(B[row]) == 1

    def test_row_sums_zero_without_drop(self):
        net = generators.random_flow_network(8, seed=3)
        B = net.incidence_matrix()
        np.testing.assert_allclose(B @ np.ones(net.n), 0.0, atol=1e-12)


class TestFlowSemantics:
    def test_feasible_flow_accepted(self):
        net = diamond_network()
        flow = {(0, 1): 2.0, (1, 3): 2.0, (0, 2): 1.0, (2, 3): 1.0}
        assert net.is_feasible_flow(flow)
        assert net.flow_value(flow) == 3.0
        assert net.flow_cost(flow) == pytest.approx(2 * 1 + 2 * 1 + 1 * 2 + 1 * 2)

    def test_capacity_violation_rejected(self):
        net = diamond_network()
        flow = {(0, 1): 5.0, (1, 3): 5.0}
        assert not net.is_feasible_flow(flow)

    def test_conservation_violation_rejected(self):
        net = diamond_network()
        flow = {(0, 1): 2.0, (1, 3): 1.0}
        assert net.flow_conservation_violation(flow) == pytest.approx(1.0)
        assert not net.is_feasible_flow(flow)

    def test_zero_flow_always_feasible(self):
        net = generators.random_flow_network(10, seed=5)
        assert net.is_feasible_flow(net.zero_flow())
        assert net.flow_value(net.zero_flow()) == 0.0


class TestGenerators:
    def test_random_flow_network_has_path_to_sink(self):
        import networkx as nx

        for seed in range(5):
            net = generators.random_flow_network(12, seed=seed)
            assert nx.has_path(net.to_networkx(), net.source, net.sink)

    def test_layered_flow_network_structure(self):
        net = generators.layered_flow_network(layers=3, width=3, seed=1)
        assert net.n == 2 + 3 * 3
        import networkx as nx

        assert nx.has_path(net.to_networkx(), net.source, net.sink)

    def test_capacities_and_costs_are_integral(self):
        net = generators.random_flow_network(10, max_capacity=7, max_cost=3, seed=2)
        assert np.allclose(net.capacities(), np.round(net.capacities()))
        assert np.allclose(net.costs(), np.round(net.costs()))
        assert net.max_capacity() <= 7
        assert net.max_cost_magnitude() <= 3
