"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import WeightedGraph


@pytest.fixture
def rng():
    """A deterministically seeded numpy Generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_graph() -> WeightedGraph:
    """A small connected weighted graph used across many tests."""
    return generators.random_weighted_graph(16, average_degree=5, max_weight=8, seed=7)


@pytest.fixture
def medium_graph() -> WeightedGraph:
    """A medium connected weighted graph (still fast to eigendecompose)."""
    return generators.random_weighted_graph(40, average_degree=7, max_weight=16, seed=11)


@pytest.fixture
def triangle() -> WeightedGraph:
    """The weighted triangle graph."""
    g = WeightedGraph(3)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(0, 2, 4.0)
    return g


@pytest.fixture
def path4() -> WeightedGraph:
    """A path on four vertices with unit weights."""
    return generators.path_graph(4)
